package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// Loss scores a batch of predictions against targets and produces the
// gradient of the mean loss with respect to the predictions.
type Loss interface {
	// Loss returns (mean loss over the batch, dL/dpred).
	Loss(pred, target *tensor.Matrix) (float64, *tensor.Matrix)
	Name() string
}

func lossShapeCheck(name string, pred, target *tensor.Matrix) {
	if pred.Rows != target.Rows || pred.Cols != target.Cols {
		panic(fmt.Sprintf("nn: %s shape mismatch pred %dx%d vs target %dx%d",
			name, pred.Rows, pred.Cols, target.Rows, target.Cols))
	}
	if pred.Size() == 0 {
		panic(fmt.Sprintf("nn: %s on empty batch", name))
	}
}

// MSE is mean squared error: ½(p−t)² summed over outputs, averaged over
// the batch; gradient (p−t)/batch.
type MSE struct{}

// Loss implements Loss.
func (l MSE) Loss(pred, target *tensor.Matrix) (float64, *tensor.Matrix) {
	grad := tensor.New(pred.Rows, pred.Cols)
	return l.LossInto(grad, pred, target), grad
}

// LossInto is Loss writing the gradient into caller-provided storage; grad
// must be pred-shaped. It allocates nothing.
func (MSE) LossInto(grad, pred, target *tensor.Matrix) float64 {
	lossShapeCheck("MSE", pred, target)
	lossShapeCheck("MSE grad", pred, grad)
	n := float64(pred.Rows)
	sum := 0.0
	for i, p := range pred.Data {
		d := p - target.Data[i]
		sum += 0.5 * d * d
		grad.Data[i] = d / n
	}
	return sum / n
}

// Name implements Loss.
func (MSE) Name() string { return "MSE" }

// MAE is absolute error summed over outputs, averaged over the batch;
// gradient sign(p−t)/batch.
type MAE struct{}

// Loss implements Loss.
func (l MAE) Loss(pred, target *tensor.Matrix) (float64, *tensor.Matrix) {
	grad := tensor.New(pred.Rows, pred.Cols)
	return l.LossInto(grad, pred, target), grad
}

// LossInto is Loss writing the gradient into caller-provided storage; grad
// must be pred-shaped. It allocates nothing.
func (MAE) LossInto(grad, pred, target *tensor.Matrix) float64 {
	lossShapeCheck("MAE", pred, target)
	lossShapeCheck("MAE grad", pred, grad)
	n := float64(pred.Rows)
	sum := 0.0
	for i, p := range pred.Data {
		d := p - target.Data[i]
		sum += math.Abs(d)
		switch {
		case d > 0:
			grad.Data[i] = 1 / n
		case d < 0:
			grad.Data[i] = -1 / n
		default:
			grad.Data[i] = 0
		}
	}
	return sum / n
}

// Name implements Loss.
func (MAE) Name() string { return "MAE" }

// Huber is the loss the paper's DQN minimizes (Algorithm 2): quadratic for
// residuals within Delta, linear beyond — so a single outlier transition in
// the replay batch cannot blow up the update.
type Huber struct {
	// Delta is the quadratic/linear crossover; the conventional 1.0 when zero.
	Delta float64
}

func (h Huber) delta() float64 {
	if h.Delta <= 0 {
		return 1.0
	}
	return h.Delta
}

// Loss implements Loss.
func (h Huber) Loss(pred, target *tensor.Matrix) (float64, *tensor.Matrix) {
	grad := tensor.New(pred.Rows, pred.Cols)
	return h.LossInto(grad, pred, target), grad
}

// LossInto is Loss writing the gradient into caller-provided storage; grad
// must be pred-shaped. It allocates nothing.
func (h Huber) LossInto(grad, pred, target *tensor.Matrix) float64 {
	lossShapeCheck("Huber", pred, target)
	lossShapeCheck("Huber grad", pred, grad)
	d := h.delta()
	n := float64(pred.Rows)
	sum := 0.0
	for i, p := range pred.Data {
		r := p - target.Data[i]
		if a := math.Abs(r); a <= d {
			sum += 0.5 * r * r
			grad.Data[i] = r / n
		} else {
			sum += d * (a - 0.5*d)
			if r > 0 {
				grad.Data[i] = d / n
			} else {
				grad.Data[i] = -d / n
			}
		}
	}
	return sum / n
}

// Name implements Loss.
func (h Huber) Name() string { return fmt.Sprintf("Huber(δ=%g)", h.delta()) }

// MaskedHuber applies the Huber loss only where mask is non-zero. The DQN
// uses it to train just the Q-value of the action actually taken while
// leaving the other two action heads untouched.
type MaskedHuber struct {
	Delta float64
}

// Loss computes the Huber loss over masked entries only; the divisor is the
// number of masked entries (one per transition in a DQN batch).
func (h MaskedHuber) Loss(pred, target, mask *tensor.Matrix) (float64, *tensor.Matrix) {
	grad := tensor.New(pred.Rows, pred.Cols)
	return h.LossInto(grad, pred, target, mask), grad
}

// LossInto is Loss writing the gradient into caller-provided storage; grad
// must be pred-shaped (unmasked entries are zeroed). It allocates nothing —
// the DQN's Learn hot path calls it with a persistent gradient buffer.
func (h MaskedHuber) LossInto(grad, pred, target, mask *tensor.Matrix) float64 {
	lossShapeCheck("MaskedHuber", pred, target)
	lossShapeCheck("MaskedHuber mask", pred, mask)
	lossShapeCheck("MaskedHuber grad", pred, grad)
	d := Huber{Delta: h.Delta}.delta()
	active := 0.0
	for _, m := range mask.Data {
		if m != 0 {
			active++
		}
	}
	if active == 0 {
		panic("nn: MaskedHuber with empty mask")
	}
	sum := 0.0
	for i, p := range pred.Data {
		if mask.Data[i] == 0 {
			grad.Data[i] = 0
			continue
		}
		r := p - target.Data[i]
		if a := math.Abs(r); a <= d {
			sum += 0.5 * r * r
			grad.Data[i] = r / active
		} else {
			sum += d * (a - 0.5*d)
			if r > 0 {
				grad.Data[i] = d / active
			} else {
				grad.Data[i] = -d / active
			}
		}
	}
	return sum / active
}
