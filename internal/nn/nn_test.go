package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func TestDenseForwardMath(t *testing.T) {
	d := &Dense{
		W:  tensor.NewFromSlice(2, 2, []float64{1, 2, 3, 4}),
		B:  tensor.NewFromSlice(1, 2, []float64{10, 20}),
		dW: tensor.New(2, 2),
		dB: tensor.New(1, 2),
	}
	y := d.Forward(tensor.NewFromSlice(1, 2, []float64{1, 1}))
	if !y.Equal(tensor.NewFromSlice(1, 2, []float64{14, 26})) {
		t.Fatalf("Dense forward = %v", y)
	}
	if d.In() != 2 || d.Out() != 2 {
		t.Fatal("In/Out wrong")
	}
}

func TestDenseForwardPanicsOnWidthMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := NewDense(rng, 3, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on bad input width")
		}
	}()
	d.Forward(tensor.New(1, 4))
}

func TestBackwardBeforeForwardPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, l := range []Layer{NewDense(rng, 2, 2), NewReLU(), NewLSTM(rng, 1, 2, 3)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: Backward before Forward did not panic", l.Name())
				}
			}()
			l.Backward(tensor.New(1, 2))
		}()
	}
}

func TestActivationValues(t *testing.T) {
	x := tensor.NewFromSlice(1, 3, []float64{-2, 0, 2})
	if y := NewReLU().Forward(x); !y.Equal(tensor.NewFromSlice(1, 3, []float64{0, 0, 2})) {
		t.Fatalf("ReLU = %v", y)
	}
	y := NewSigmoid().Forward(x)
	if math.Abs(y.Data[1]-0.5) > 1e-12 {
		t.Fatalf("Sigmoid(0) = %v", y.Data[1])
	}
	if y.Data[0] >= y.Data[1] || y.Data[1] >= y.Data[2] {
		t.Fatal("Sigmoid not monotone")
	}
	ty := NewTanh().Forward(x)
	if math.Abs(ty.Data[1]) > 1e-12 || math.Abs(ty.Data[2]-math.Tanh(2)) > 1e-12 {
		t.Fatalf("Tanh wrong: %v", ty)
	}
	if iy := NewIdentity().Forward(x); !iy.Equal(x) {
		t.Fatal("Identity not identity")
	}
}

func TestSigmoidStability(t *testing.T) {
	if v := sigmoid(1000); v != 1 {
		t.Fatalf("sigmoid(1000) = %v", v)
	}
	if v := sigmoid(-1000); v != 0 {
		t.Fatalf("sigmoid(-1000) = %v", v)
	}
	if math.IsNaN(sigmoid(710)) || math.IsNaN(sigmoid(-710)) {
		t.Fatal("sigmoid NaN at large inputs")
	}
}

func TestSequentialStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := NewMLP(rng, 4, 8, 8, 3)
	// 3 Dense + 2 ReLU
	if len(m.Layers) != 5 {
		t.Fatalf("MLP layers = %d, want 5", len(m.Layers))
	}
	if got := m.NumTrainableLayers(); got != 3 {
		t.Fatalf("trainable layers = %d, want 3", got)
	}
	wantParams := 4*8 + 8 + 8*8 + 8 + 8*3 + 3
	if got := m.NumParams(); got != wantParams {
		t.Fatalf("NumParams = %d, want %d", got, wantParams)
	}
	y := m.Forward(tensor.New(2, 4))
	if y.Rows != 2 || y.Cols != 3 {
		t.Fatalf("MLP output shape %dx%d", y.Rows, y.Cols)
	}
	if m.Name() == "" {
		t.Fatal("empty Name")
	}
}

func TestTrainableRangeSplit(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := NewMLP(rng, 4, 8, 8, 3)
	base := m.ParamsOfTrainableRange(0, 2)
	personal := m.ParamsOfTrainableRange(2, 3)
	if len(base) != 4 || len(personal) != 2 {
		t.Fatalf("split sizes base=%d personal=%d, want 4,2", len(base), len(personal))
	}
	all := m.Params()
	if base[0] != all[0] || personal[1] != all[5] {
		t.Fatal("range params must alias model params")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("out-of-range split did not panic")
			}
		}()
		m.ParamsOfTrainableRange(0, 4)
	}()
}

func TestCopyParamsFromAndSerialization(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := NewMLP(rng, 3, 5, 2)
	b := NewMLP(rng, 3, 5, 2)
	x := tensor.RandNormal(rng, 2, 3, 0, 1)
	if a.Forward(x).Equal(b.Forward(x)) {
		t.Fatal("independently initialized models should differ")
	}
	b.CopyParamsFrom(a)
	if !a.Forward(x).Equal(b.Forward(x)) {
		t.Fatal("CopyParamsFrom did not equalize outputs")
	}

	blob, err := a.MarshalParams()
	if err != nil {
		t.Fatal(err)
	}
	if len(blob) != a.WireSize() {
		t.Fatalf("WireSize %d != blob %d", a.WireSize(), len(blob))
	}
	c := NewMLP(rand.New(rand.NewSource(77)), 3, 5, 2)
	if err := c.UnmarshalParams(blob); err != nil {
		t.Fatal(err)
	}
	if !a.Forward(x).Equal(c.Forward(x)) {
		t.Fatal("serialization round-trip changed outputs")
	}
	// Architecture mismatch should error, not panic.
	d := NewMLP(rand.New(rand.NewSource(78)), 4, 5, 2)
	if err := d.UnmarshalParams(blob); err == nil {
		t.Fatal("mismatched architecture should fail to unmarshal")
	}
}

func TestMLPLearnsXOR(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	m := NewMLP(rng, 2, 16, 16, 1)
	x := tensor.NewFromSlice(4, 2, []float64{0, 0, 0, 1, 1, 0, 1, 1})
	y := tensor.NewFromSlice(4, 1, []float64{0, 1, 1, 0})
	opt := &Adam{LR: 0.01}
	var last float64
	for i := 0; i < 800; i++ {
		last = FitBatch(m, MSE{}, opt, x, y)
	}
	if last > 0.01 {
		t.Fatalf("XOR did not converge: final loss %v", last)
	}
	pred := m.Forward(x)
	for i := 0; i < 4; i++ {
		if math.Abs(pred.Data[i]-y.Data[i]) > 0.25 {
			t.Fatalf("XOR pred[%d] = %v, want %v", i, pred.Data[i], y.Data[i])
		}
	}
}

func TestLSTMLearnsLastValue(t *testing.T) {
	// Task: output the last element of the sequence. Trivial for LSTM if
	// gates and BPTT work.
	rng := rand.New(rand.NewSource(7))
	m := NewLSTMRegressor(rng, 5, 8, 1)
	opt := &Adam{LR: 0.02, Clip: 1}
	var last float64
	for i := 0; i < 400; i++ {
		x := tensor.RandUniform(rng, 8, 5, 0, 1)
		y := tensor.New(8, 1)
		for r := 0; r < 8; r++ {
			y.Data[r] = x.Row(r)[4]
		}
		last = FitBatch(m, MSE{}, opt, x, y)
	}
	if last > 0.01 {
		t.Fatalf("LSTM did not learn identity-of-last: loss %v", last)
	}
}

func TestOptimizersReduceLossOnQuadratic(t *testing.T) {
	// Minimize ||w||² from a fixed start with each optimizer.
	mk := func() ([]*tensor.Matrix, []*tensor.Matrix) {
		w := tensor.NewFromSlice(1, 3, []float64{1, -2, 3})
		g := tensor.New(1, 3)
		return []*tensor.Matrix{w}, []*tensor.Matrix{g}
	}
	opts := []Optimizer{
		&SGD{LR: 0.1},
		&Momentum{LR: 0.05, Mu: 0.9},
		&RMSProp{LR: 0.05},
		&Adam{LR: 0.1},
	}
	for _, opt := range opts {
		params, grads := mk()
		start := params[0].Norm2()
		for i := 0; i < 200; i++ {
			for j, v := range params[0].Data {
				grads[0].Data[j] = 2 * v
			}
			opt.Step(params, grads)
		}
		if end := params[0].Norm2(); end > start*0.01 {
			t.Fatalf("%s failed to minimize quadratic: %v -> %v", opt.Name(), start, end)
		}
	}
}

func TestSGDClip(t *testing.T) {
	w := []*tensor.Matrix{tensor.NewFromSlice(1, 1, []float64{0})}
	g := []*tensor.Matrix{tensor.NewFromSlice(1, 1, []float64{100})}
	(&SGD{LR: 1, Clip: 1}).Step(w, g)
	if w[0].Data[0] != -1 {
		t.Fatalf("clipped SGD step = %v, want -1", w[0].Data[0])
	}
}

func TestHuberMatchesMSEInQuadraticZone(t *testing.T) {
	pred := tensor.NewFromSlice(1, 2, []float64{0.3, -0.2})
	target := tensor.New(1, 2)
	hl, hg := Huber{Delta: 1}.Loss(pred, target)
	ml, mg := MSE{}.Loss(pred, target)
	if math.Abs(hl-ml) > 1e-12 || !hg.AlmostEqual(mg, 1e-12) {
		t.Fatal("Huber must equal MSE for |r| <= δ")
	}
}

func TestHuberLinearZoneGradientBounded(t *testing.T) {
	pred := tensor.NewFromSlice(1, 1, []float64{100})
	target := tensor.New(1, 1)
	_, g := Huber{Delta: 1}.Loss(pred, target)
	if g.Data[0] != 1 { // δ/n with n=1
		t.Fatalf("Huber linear-zone grad = %v, want 1", g.Data[0])
	}
}

func TestMaskedHuber(t *testing.T) {
	pred := tensor.NewFromSlice(2, 3, []float64{1, 5, 9, 2, 4, 8})
	target := tensor.NewFromSlice(2, 3, []float64{0, 0, 0, 2.5, 0, 0})
	mask := tensor.NewFromSlice(2, 3, []float64{1, 0, 0, 1, 0, 0})
	l, g := MaskedHuber{Delta: 1}.Loss(pred, target, mask)
	// residuals: +1 (linear boundary) and -0.5 (quadratic); δ=1
	want := (1*(1-0.5) + 0.5*0.25) / 2
	if math.Abs(l-want) > 1e-12 {
		t.Fatalf("MaskedHuber loss = %v, want %v", l, want)
	}
	for i := range g.Data {
		if mask.Data[i] == 0 && g.Data[i] != 0 {
			t.Fatal("gradient leaked into masked-out entries")
		}
	}
}

func TestLossPanicsOnShapeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MSE{}.Loss(tensor.New(1, 2), tensor.New(2, 1))
}

// --- property tests ---

func TestPropFlattenUnflattenIdentity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := NewMLP(rng, 3, 4, 2)
		orig := FlattenParams(m.Params())
		clone := NewMLP(rand.New(rand.NewSource(seed+1)), 3, 4, 2)
		UnflattenParams(clone.Params(), orig)
		return floatsEqual(FlattenParams(clone.Params()), orig)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestPropAverageOfIdenticalIsIdentity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := NewMLP(rng, 3, 4, 2)
		snap := CloneParams(m.Params())
		dst := CloneParams(m.Params())
		n := AverageParamSets(dst, snap, snap, snap)
		if n != 3 {
			return false
		}
		for i := range dst {
			if !dst[i].AlmostEqual(snap[i], 1e-12) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestPropAverageCommutative(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := CloneParams(NewMLP(rng, 3, 4, 2).Params())
		b := CloneParams(NewMLP(rng, 3, 4, 2).Params())
		d1 := CloneParams(a)
		d2 := CloneParams(a)
		AverageParamSets(d1, a, b)
		AverageParamSets(d2, b, a)
		for i := range d1 {
			if !d1[i].AlmostEqual(d2[i], 1e-12) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestAverageRejectsNaNSets(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := NewMLP(rng, 2, 3, 1)
	good := CloneParams(m.Params())
	bad := CloneParams(m.Params())
	bad[0].Data[0] = math.NaN()
	dst := CloneParams(m.Params())
	if n := AverageParamSets(dst, good, bad); n != 1 {
		t.Fatalf("averaged %d sets, want 1 (NaN set rejected)", n)
	}
	for i := range dst {
		if !dst[i].AlmostEqual(good[i], 1e-12) {
			t.Fatal("dst should equal the single clean set")
		}
	}
	// All-bad: dst unchanged, 0 returned.
	before := CloneParams(dst)
	if n := AverageParamSets(dst, bad); n != 0 {
		t.Fatalf("averaged %d, want 0", n)
	}
	for i := range dst {
		if !dst[i].Equal(before[i]) {
			t.Fatal("dst mutated despite all sets rejected")
		}
	}
}

func floatsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
