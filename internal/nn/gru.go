package nn

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// GRU is a single-layer gated recurrent unit unrolled over a fixed sequence
// length, returning the final hidden state. It is the lighter-weight
// alternative to LSTM (no separate cell state, 3 gates instead of 4) and
// backs the KindGRU forecaster extension.
//
// Input layout matches LSTM: batch x (SeqLen*InputSize), timestep-major.
//
// Gate weights pack into W of shape (InputSize+Hidden) x 3*Hidden with gate
// order [update z, reset r, candidate n], plus a 1 x 3*Hidden bias. The
// candidate pre-activation uses the *reset-scaled* hidden state, i.e. the
// original Cho et al. formulation:
//
//	z_t = σ(W_z·[x_t, h_{t-1}])
//	r_t = σ(W_r·[x_t, h_{t-1}])
//	n_t = tanh(W_n·[x_t, r_t⊙h_{t-1}])
//	h_t = (1−z_t)⊙n_t + z_t⊙h_{t-1}
type GRU struct {
	InputSize, Hidden, SeqLen int

	W, B   *tensor.Matrix
	dW, dB *tensor.Matrix

	// Per-timestep caches for BPTT.
	xs         []*tensor.Matrix // x_t
	hs         []*tensor.Matrix // h_0 .. h_T
	zs, rs, ns []*tensor.Matrix
	batch      int
}

// NewGRU returns a GRU over sequences of seqLen steps.
func NewGRU(rng *rand.Rand, inputSize, hidden, seqLen int) *GRU {
	if inputSize < 1 || hidden < 1 || seqLen < 1 {
		panic(fmt.Sprintf("nn: invalid GRU config in=%d hidden=%d seq=%d", inputSize, hidden, seqLen))
	}
	return &GRU{
		InputSize: inputSize,
		Hidden:    hidden,
		SeqLen:    seqLen,
		W:         tensor.XavierUniform(rng, inputSize+hidden, 3*hidden),
		B:         tensor.New(1, 3*hidden),
		dW:        tensor.New(inputSize+hidden, 3*hidden),
		dB:        tensor.New(1, 3*hidden),
	}
}

// Forward implements Layer.
func (g *GRU) Forward(x *tensor.Matrix) *tensor.Matrix {
	if x.Cols != g.SeqLen*g.InputSize {
		panic(fmt.Sprintf("nn: GRU forward input width %d, want %d", x.Cols, g.SeqLen*g.InputSize))
	}
	b, h, in := x.Rows, g.Hidden, g.InputSize
	g.batch = b
	g.xs = make([]*tensor.Matrix, g.SeqLen)
	g.zs = make([]*tensor.Matrix, g.SeqLen)
	g.rs = make([]*tensor.Matrix, g.SeqLen)
	g.ns = make([]*tensor.Matrix, g.SeqLen)
	g.hs = make([]*tensor.Matrix, g.SeqLen+1)
	g.hs[0] = tensor.New(b, h)

	// Weight views: rows [0,in) are input weights, rows [in,in+h) are
	// recurrent weights; we apply them separately so the candidate gate can
	// use the reset-scaled hidden state.
	for t := 0; t < g.SeqLen; t++ {
		xt := x.SliceCols(t*in, (t+1)*in)
		g.xs[t] = xt
		zt := tensor.New(b, h)
		rt := tensor.New(b, h)
		nt := tensor.New(b, h)
		ht := tensor.New(b, h)
		for row := 0; row < b; row++ {
			xr := xt.Row(row)
			hPrev := g.hs[t].Row(row)
			// Pre-activations for the three gates.
			for c := 0; c < h; c++ {
				var preZ, preR float64
				preZ = g.B.Data[c]
				preR = g.B.Data[h+c]
				for k, xv := range xr {
					preZ += xv * g.W.Data[k*3*h+c]
					preR += xv * g.W.Data[k*3*h+h+c]
				}
				for k, hv := range hPrev {
					preZ += hv * g.W.Data[(in+k)*3*h+c]
					preR += hv * g.W.Data[(in+k)*3*h+h+c]
				}
				zt.Row(row)[c] = sigmoid(preZ)
				rt.Row(row)[c] = sigmoid(preR)
			}
			// Candidate uses r⊙h_{t-1}.
			for c := 0; c < h; c++ {
				preN := g.B.Data[2*h+c]
				for k, xv := range xr {
					preN += xv * g.W.Data[k*3*h+2*h+c]
				}
				for k, hv := range hPrev {
					preN += rt.Row(row)[k] * hv * g.W.Data[(in+k)*3*h+2*h+c]
				}
				nv := math.Tanh(preN)
				nt.Row(row)[c] = nv
				zv := zt.Row(row)[c]
				ht.Row(row)[c] = (1-zv)*nv + zv*hPrev[c]
			}
		}
		g.zs[t], g.rs[t], g.ns[t], g.hs[t+1] = zt, rt, nt, ht
	}
	return g.hs[g.SeqLen]
}

// Backward implements Layer (BPTT from the final hidden state's gradient).
func (g *GRU) Backward(grad *tensor.Matrix) *tensor.Matrix {
	if g.xs == nil {
		panic("nn: GRU Backward called before Forward")
	}
	b, h, in := g.batch, g.Hidden, g.InputSize
	if grad.Rows != b || grad.Cols != h {
		panic(fmt.Sprintf("nn: GRU backward grad shape %dx%d, want %dx%d", grad.Rows, grad.Cols, b, h))
	}
	dx := tensor.New(b, g.SeqLen*in)
	dh := grad.Clone()

	for t := g.SeqLen - 1; t >= 0; t-- {
		zt, rt, nt := g.zs[t], g.rs[t], g.ns[t]
		hPrev := g.hs[t]
		xt := g.xs[t]
		dhNext := tensor.New(b, h)
		for row := 0; row < b; row++ {
			dhR := dh.Row(row)
			zR, rR, nR := zt.Row(row), rt.Row(row), nt.Row(row)
			hpR := hPrev.Row(row)
			xR := xt.Row(row)
			dxR := dx.Row(row)[t*in : (t+1)*in]
			dhN := dhNext.Row(row)

			for c := 0; c < h; c++ {
				dht := dhR[c]
				// h_t = (1−z)·n + z·h_prev
				dz := dht * (hpR[c] - nR[c])
				dn := dht * (1 - zR[c])
				dhN[c] += dht * zR[c]

				dpreZ := dz * zR[c] * (1 - zR[c])
				dpreN := dn * (1 - nR[c]*nR[c])

				// Accumulate weight/bias/input/recurrent grads for z and n;
				// the reset gate's gradient is accumulated inside the
				// recurrent loop below (it only feeds the candidate).
				g.dB.Data[c] += dpreZ
				g.dB.Data[2*h+c] += dpreN
				for k, xv := range xR {
					g.dW.Data[k*3*h+c] += xv * dpreZ
					g.dW.Data[k*3*h+2*h+c] += xv * dpreN
					dxR[k] += dpreZ*g.W.Data[k*3*h+c] + dpreN*g.W.Data[k*3*h+2*h+c]
				}
				for k := 0; k < h; k++ {
					hv := hpR[k]
					g.dW.Data[(in+k)*3*h+c] += hv * dpreZ
					g.dW.Data[(in+k)*3*h+2*h+c] += rR[k] * hv * dpreN
					dhN[k] += dpreZ * g.W.Data[(in+k)*3*h+c]
					// Through the candidate: d(r_k·h_k) = dpreN·W
					grk := dpreN * g.W.Data[(in+k)*3*h+2*h+c]
					dhN[k] += grk * rR[k]
					// Gradient into the reset gate r_k accumulates across c.
					drk := grk * hv
					// preR_k = ...; apply σ' and push into weights/inputs.
					dpreR := drk * rR[k] * (1 - rR[k])
					g.dB.Data[h+k] += dpreR
					for kk, xv := range xR {
						g.dW.Data[kk*3*h+h+k] += xv * dpreR
						dxR[kk] += dpreR * g.W.Data[kk*3*h+h+k]
					}
					for kk := 0; kk < h; kk++ {
						g.dW.Data[(in+kk)*3*h+h+k] += hpR[kk] * dpreR
						dhN[kk] += dpreR * g.W.Data[(in+kk)*3*h+h+k]
					}
				}
			}
		}
		dh = dhNext
	}
	return dx
}

// Params implements Layer.
func (g *GRU) Params() []*tensor.Matrix { return []*tensor.Matrix{g.W, g.B} }

// Grads implements Layer.
func (g *GRU) Grads() []*tensor.Matrix { return []*tensor.Matrix{g.dW, g.dB} }

// ZeroGrads implements Layer.
func (g *GRU) ZeroGrads() {
	g.dW.Zero()
	g.dB.Zero()
}

// Name implements Layer.
func (g *GRU) Name() string {
	return fmt.Sprintf("GRU(in=%d,h=%d,T=%d)", g.InputSize, g.Hidden, g.SeqLen)
}
