package nn

import (
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

func TestGradCheckGRU(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	model := NewSequential(NewGRU(rng, 1, 4, 5), NewDenseXavier(rng, 4, 2))
	checkModelGradients(t, model, 5, 3, MSE{}, 1e-4)
}

func TestGradCheckGRUMultiFeature(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	model := NewSequential(NewGRU(rng, 3, 3, 4), NewDenseXavier(rng, 3, 1))
	checkModelGradients(t, model, 12, 2, MSE{}, 1e-4)
}

func TestGRULearnsLastValue(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	model := NewSequential(NewGRU(rng, 1, 8, 5), NewDenseXavier(rng, 8, 1))
	opt := &Adam{LR: 0.02, Clip: 1}
	var last float64
	for i := 0; i < 400; i++ {
		x := tensor.RandUniform(rng, 8, 5, 0, 1)
		y := tensor.New(8, 1)
		for r := 0; r < 8; r++ {
			y.Data[r] = x.Row(r)[4]
		}
		last = FitBatch(model, MSE{}, opt, x, y)
	}
	if last > 0.01 {
		t.Fatalf("GRU did not learn identity-of-last: loss %v", last)
	}
}

func TestGRUShapePanics(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	g := NewGRU(rng, 2, 3, 4)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("bad input width accepted")
			}
		}()
		g.Forward(tensor.New(1, 7))
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Backward before Forward accepted")
			}
		}()
		NewGRU(rng, 1, 2, 3).Backward(tensor.New(1, 2))
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("invalid config accepted")
			}
		}()
		NewGRU(rng, 0, 2, 3)
	}()
}

func TestGRUFewerParamsThanLSTM(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	gru := NewGRU(rng, 1, 16, 10)
	lstm := NewLSTM(rng, 1, 16, 10)
	gp := gru.W.Size() + gru.B.Size()
	lp := lstm.W.Size() + lstm.B.Size()
	if gp >= lp {
		t.Fatalf("GRU params %d should undercut LSTM %d", gp, lp)
	}
	if gru.Name() == "" || len(gru.Params()) != 2 || len(gru.Grads()) != 2 {
		t.Fatal("interface plumbing wrong")
	}
}
