package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// Optimizer applies one update step to a parameter set given aligned
// gradients. Implementations that keep per-parameter state (momentum, Adam
// moments) key it by position, so the same optimizer instance must always be
// fed the same parameter list — which holds for a fixed architecture.
type Optimizer interface {
	// Step updates params[i] using grads[i] for all i.
	Step(params, grads []*tensor.Matrix)
	Name() string
}

func stepShapeCheck(name string, params, grads []*tensor.Matrix) {
	if len(params) != len(grads) {
		panic(fmt.Sprintf("nn: %s params/grads length mismatch %d vs %d", name, len(params), len(grads)))
	}
}

// SGD is plain stochastic gradient descent: w ← w − lr·g.
// This is the "stochastic parameter descent" the paper uses for both the
// DFL forecasters and the personalization layers.
type SGD struct {
	LR float64
	// Clip, when positive, clamps each gradient element to [−Clip, Clip]
	// before the update (cheap protection against exploding LSTM gradients).
	Clip float64
}

// Step implements Optimizer.
func (o *SGD) Step(params, grads []*tensor.Matrix) {
	stepShapeCheck("SGD", params, grads)
	for i, p := range params {
		g := grads[i]
		if o.Clip > 0 {
			g.ClipInPlace(o.Clip)
		}
		p.AddScaled(g, -o.LR)
	}
}

// Name implements Optimizer.
func (o *SGD) Name() string { return fmt.Sprintf("SGD(lr=%g)", o.LR) }

// Momentum is SGD with classical momentum: v ← μv + g; w ← w − lr·v.
type Momentum struct {
	LR, Mu float64
	Clip   float64
	vel    []*tensor.Matrix
}

// Step implements Optimizer.
func (o *Momentum) Step(params, grads []*tensor.Matrix) {
	stepShapeCheck("Momentum", params, grads)
	if o.vel == nil {
		o.vel = make([]*tensor.Matrix, len(params))
		for i, p := range params {
			o.vel[i] = tensor.New(p.Rows, p.Cols)
		}
	}
	for i, p := range params {
		g := grads[i]
		if o.Clip > 0 {
			g.ClipInPlace(o.Clip)
		}
		v := o.vel[i]
		v.ScaleInPlace(o.Mu)
		v.AddScaled(g, 1)
		p.AddScaled(v, -o.LR)
	}
}

// Name implements Optimizer.
func (o *Momentum) Name() string { return fmt.Sprintf("Momentum(lr=%g,μ=%g)", o.LR, o.Mu) }

// RMSProp divides the learning rate by a running RMS of recent gradients.
type RMSProp struct {
	LR, Decay, Eps float64
	Clip           float64
	sq             []*tensor.Matrix
}

// Step implements Optimizer.
func (o *RMSProp) Step(params, grads []*tensor.Matrix) {
	stepShapeCheck("RMSProp", params, grads)
	decay := o.Decay
	if decay == 0 {
		decay = 0.99
	}
	eps := o.Eps
	if eps == 0 {
		eps = 1e-8
	}
	if o.sq == nil {
		o.sq = make([]*tensor.Matrix, len(params))
		for i, p := range params {
			o.sq[i] = tensor.New(p.Rows, p.Cols)
		}
	}
	for i, p := range params {
		g := grads[i]
		if o.Clip > 0 {
			g.ClipInPlace(o.Clip)
		}
		s := o.sq[i]
		for j, gv := range g.Data {
			s.Data[j] = decay*s.Data[j] + (1-decay)*gv*gv
			p.Data[j] -= o.LR * gv / (math.Sqrt(s.Data[j]) + eps)
		}
	}
}

// Name implements Optimizer.
func (o *RMSProp) Name() string { return fmt.Sprintf("RMSProp(lr=%g)", o.LR) }

// Adam is the Kingma–Ba adaptive-moment optimizer with bias correction.
type Adam struct {
	LR, Beta1, Beta2, Eps float64
	Clip                  float64
	m, v                  []*tensor.Matrix
	t                     int
}

// Step implements Optimizer.
func (o *Adam) Step(params, grads []*tensor.Matrix) {
	stepShapeCheck("Adam", params, grads)
	b1, b2 := o.Beta1, o.Beta2
	if b1 == 0 {
		b1 = 0.9
	}
	if b2 == 0 {
		b2 = 0.999
	}
	eps := o.Eps
	if eps == 0 {
		eps = 1e-8
	}
	if o.m == nil {
		o.m = make([]*tensor.Matrix, len(params))
		o.v = make([]*tensor.Matrix, len(params))
		for i, p := range params {
			o.m[i] = tensor.New(p.Rows, p.Cols)
			o.v[i] = tensor.New(p.Rows, p.Cols)
		}
	}
	o.t++
	c1 := 1 - math.Pow(b1, float64(o.t))
	c2 := 1 - math.Pow(b2, float64(o.t))
	for i, p := range params {
		g := grads[i]
		if o.Clip > 0 {
			g.ClipInPlace(o.Clip)
		}
		m, v := o.m[i], o.v[i]
		for j, gv := range g.Data {
			m.Data[j] = b1*m.Data[j] + (1-b1)*gv
			v.Data[j] = b2*v.Data[j] + (1-b2)*gv*gv
			mh := m.Data[j] / c1
			vh := v.Data[j] / c2
			p.Data[j] -= o.LR * mh / (math.Sqrt(vh) + eps)
		}
	}
}

// Name implements Optimizer.
func (o *Adam) Name() string { return fmt.Sprintf("Adam(lr=%g)", o.LR) }

// StateSnapshot returns deep copies of the optimizer's first/second moment
// estimates and its step counter, for checkpointing. A fresh optimizer
// (no Step yet) returns nil moments and t=0.
func (o *Adam) StateSnapshot() (m, v []*tensor.Matrix, t int) {
	if o.m == nil {
		return nil, nil, o.t
	}
	m = make([]*tensor.Matrix, len(o.m))
	v = make([]*tensor.Matrix, len(o.v))
	for i := range o.m {
		m[i] = o.m[i].Clone()
		v[i] = o.v[i].Clone()
	}
	return m, v, o.t
}

// RestoreState installs moment estimates captured by StateSnapshot (deep
// copied in, so the caller keeps ownership of m and v). Passing nil
// moments resets the optimizer to its fresh state. Moment shapes must
// agree pairwise; the next Step's parameter list must match them.
func (o *Adam) RestoreState(m, v []*tensor.Matrix, t int) error {
	if (m == nil) != (v == nil) || len(m) != len(v) {
		return fmt.Errorf("nn: Adam moments mismatched (%d m vs %d v)", len(m), len(v))
	}
	if m == nil {
		o.m, o.v, o.t = nil, nil, t
		return nil
	}
	nm := make([]*tensor.Matrix, len(m))
	nv := make([]*tensor.Matrix, len(v))
	for i := range m {
		if m[i].Rows != v[i].Rows || m[i].Cols != v[i].Cols {
			return fmt.Errorf("nn: Adam moment %d shape mismatch %dx%d vs %dx%d",
				i, m[i].Rows, m[i].Cols, v[i].Rows, v[i].Cols)
		}
		nm[i] = m[i].Clone()
		nv[i] = v[i].Clone()
	}
	o.m, o.v, o.t = nm, nv, t
	return nil
}
