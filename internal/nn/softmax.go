package nn

import (
	"math"

	"repro/internal/tensor"
)

// Softmax is a row-wise softmax layer with the exact Jacobian backward
// pass. It is not used by the PFDRL pipeline itself (DQN heads are linear)
// but completes the stack for classification-style extensions, e.g. device
// mode classifiers trained on the same federated substrate.
type Softmax struct {
	// y and dx are layer-owned workspaces (see the Layer buffer-ownership
	// contract).
	y, dx *tensor.Matrix
}

// NewSoftmax returns a row-wise softmax layer.
func NewSoftmax() *Softmax { return &Softmax{} }

// Forward implements Layer. Each row is exponentiated against its max for
// numerical stability and normalized to sum to 1. The returned matrix is a
// layer-owned workspace.
func (s *Softmax) Forward(x *tensor.Matrix) *tensor.Matrix {
	y := tensor.EnsureShape(s.y, x.Rows, x.Cols)
	for r := 0; r < x.Rows; r++ {
		row := x.Row(r)
		out := y.Row(r)
		maxV := row[0]
		for _, v := range row[1:] {
			if v > maxV {
				maxV = v
			}
		}
		sum := 0.0
		for c, v := range row {
			e := math.Exp(v - maxV)
			out[c] = e
			sum += e
		}
		for c := range out {
			out[c] /= sum
		}
	}
	s.y = y
	return y
}

// Backward implements Layer: dx_i = y_i·(g_i − Σ_j g_j·y_j) per row.
// The returned matrix is a layer-owned workspace.
func (s *Softmax) Backward(grad *tensor.Matrix) *tensor.Matrix {
	if s.y == nil {
		panic("nn: Softmax Backward called before Forward")
	}
	dx := tensor.EnsureShape(s.dx, grad.Rows, grad.Cols)
	s.dx = dx
	for r := 0; r < grad.Rows; r++ {
		g := grad.Row(r)
		y := s.y.Row(r)
		dot := 0.0
		for c := range g {
			dot += g[c] * y[c]
		}
		out := dx.Row(r)
		for c := range g {
			out[c] = y[c] * (g[c] - dot)
		}
	}
	return dx
}

// Params implements Layer.
func (s *Softmax) Params() []*tensor.Matrix { return nil }

// Grads implements Layer.
func (s *Softmax) Grads() []*tensor.Matrix { return nil }

// ZeroGrads implements Layer.
func (s *Softmax) ZeroGrads() {}

// Name implements Layer.
func (s *Softmax) Name() string { return "Softmax" }

// CrossEntropy scores softmax outputs against one-hot (or soft) target
// distributions: L = −Σ t·log(p), summed over classes, averaged over the
// batch.
type CrossEntropy struct{}

// Loss implements Loss. Predictions are clamped away from 0 so gradients
// stay finite.
func (CrossEntropy) Loss(pred, target *tensor.Matrix) (float64, *tensor.Matrix) {
	lossShapeCheck("CrossEntropy", pred, target)
	const eps = 1e-12
	n := float64(pred.Rows)
	grad := tensor.New(pred.Rows, pred.Cols)
	sum := 0.0
	for i, p := range pred.Data {
		t := target.Data[i]
		if t == 0 {
			continue
		}
		pc := p
		if pc < eps {
			pc = eps
		}
		sum += -t * math.Log(pc)
		grad.Data[i] = -t / pc / n
	}
	return sum / n, grad
}

// Name implements Loss.
func (CrossEntropy) Name() string { return "CrossEntropy" }
