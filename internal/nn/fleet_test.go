package nn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// fleetArch builds one member model of the named architecture — the four
// shapes the forecaster plane actually uses (LR/SVM single dense, BP
// dense+sigmoid stack, LSTM and GRU regressors).
func fleetArch(t *testing.T, kind string, rng *rand.Rand) (*Sequential, int, int) {
	t.Helper()
	switch kind {
	case "linear":
		return NewSequential(NewDenseXavier(rng, 11, 4)), 11, 4
	case "bp":
		return NewSequential(
			NewDenseXavier(rng, 11, 9),
			NewSigmoid(),
			NewDenseXavier(rng, 9, 4),
		), 11, 4
	case "lstm":
		return NewSequential(
			NewLSTM(rng, 3, 6, 5),
			NewDenseXavier(rng, 6, 4),
		), 15, 4
	case "gru":
		return NewSequential(
			NewGRU(rng, 3, 6, 5),
			NewDenseXavier(rng, 6, 4),
		), 15, 4
	}
	t.Fatalf("unknown arch %q", kind)
	return nil, 0, 0
}

var fleetArchs = []string{"linear", "bp", "lstm", "gru"}

func buildFleet(t *testing.T, kind string, n int) (*Fleet, []*Sequential, int, int) {
	t.Helper()
	members := make([]*Sequential, n)
	var in, out int
	for i := range members {
		// Distinct seeds: fleet members are per-home models with different
		// parameters (per-home data shifts them apart immediately even when
		// they start from a shared init).
		m, mi, mo := fleetArch(t, kind, rand.New(rand.NewSource(int64(100*i+7))))
		members[i], in, out = m, mi, mo
	}
	f, err := NewFleet(members)
	if err != nil {
		t.Fatalf("NewFleet(%s × %d): %v", kind, n, err)
	}
	return f, members, in, out
}

func fillBatchedInputs(x *tensor.Batched, seed int64, hostile bool) {
	rng := rand.New(rand.NewSource(seed))
	for i := range x.Data {
		switch rng.Intn(10) {
		case 0:
			x.Data[i] = 0
		case 1:
			if hostile {
				x.Data[i] = math.NaN()
			} else {
				x.Data[i] = rng.NormFloat64()
			}
		default:
			x.Data[i] = rng.NormFloat64()
		}
	}
}

func requireBitsEqual(t *testing.T, label string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", label, len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: element %d got %v want %v (bit mismatch)", label, i, got[i], want[i])
		}
	}
}

// TestFleetForwardBackwardMatchesPerMember pins fleet Forward outputs,
// input gradients, and scattered parameter gradients bitwise against the
// per-member Sequential path, across all four architectures, fleet sizes
// 1/3/8, and hostile (NaN) inputs.
func TestFleetForwardBackwardMatchesPerMember(t *testing.T) {
	const batch = 4
	for _, kind := range fleetArchs {
		for _, n := range []int{1, 3, 8} {
			for _, hostile := range []bool{false, true} {
				f, members, in, out := buildFleet(t, kind, n)
				x := tensor.NewBatched(n, batch, in)
				fillBatchedInputs(x, int64(17*n+len(kind)), hostile)
				grad := tensor.NewBatched(n, batch, out)
				fillBatchedInputs(grad, int64(23*n+len(kind)), hostile)

				f.Gather()
				f.ZeroGrads()
				pred := f.Forward(x)
				dx := f.Backward(grad)
				f.ScatterGrads()

				for i, m := range members {
					m.ZeroGrads()
					wantPred := m.Forward(x.Item(i))
					wantDx := m.Backward(grad.Item(i))
					requireBitsEqual(t, kind+" pred", pred.Item(i).Data, wantPred.Data)
					requireBitsEqual(t, kind+" dx", dx.Item(i).Data, wantDx.Data)
					memberGrads := m.Grads()
					slabGrads := f.SlabGrads(i)
					if len(memberGrads) != len(slabGrads) {
						t.Fatalf("%s: grad count %d vs %d", kind, len(slabGrads), len(memberGrads))
					}
					for gi := range memberGrads {
						requireBitsEqual(t, kind+" grad", slabGrads[gi].Data, memberGrads[gi].Data)
					}
				}
			}
		}
	}
}

// TestFleetTrainStepMatchesFitBatch runs several SGD steps through the
// fleet (forward, loss, backward, optimizer on slab views, scatter) and
// pins the resulting member parameters bitwise against per-member FitBatch
// — the exact sequence forecast.HomeBatch.TrainEpochs uses.
func TestFleetTrainStepMatchesFitBatch(t *testing.T) {
	const batch, steps = 4, 3
	for _, kind := range fleetArchs {
		for _, n := range []int{1, 3} {
			fleetF, fleetMembers, in, out := buildFleet(t, kind, n)
			_, soloMembers, _, _ := buildFleet(t, kind, n) // identical seeds → identical params

			x := tensor.NewBatched(n, batch, in)
			fillBatchedInputs(x, int64(31*n+len(kind)), false)
			y := tensor.NewBatched(n, batch, out)
			fillBatchedInputs(y, int64(37*n+len(kind)), false)

			loss := MSE{}
			grad := tensor.NewBatched(n, batch, out)
			fleetLosses := make([]float64, n)
			for step := 0; step < steps; step++ {
				// Fleet path: one batched fwd/bwd, per-member loss + SGD on
				// slab views, then scatter back into the members.
				fleetF.Gather()
				fleetF.ZeroGrads()
				pred := fleetF.Forward(x)
				for i := 0; i < n; i++ {
					l, g := loss.Loss(pred.Item(i), y.Item(i))
					fleetLosses[i] = l
					grad.Item(i).CopyFrom(g)
				}
				fleetF.Backward(grad)
				for i := 0; i < n; i++ {
					opt := &SGD{LR: 0.05, Clip: 1}
					opt.Step(fleetF.SlabParams(i), fleetF.SlabGrads(i))
				}
				fleetF.Scatter()

				for i, m := range soloMembers {
					opt := &SGD{LR: 0.05, Clip: 1}
					wantLoss := FitBatch(m, loss, opt, x.Item(i), y.Item(i))
					if math.Float64bits(wantLoss) != math.Float64bits(fleetLosses[i]) {
						t.Fatalf("%s n=%d step %d member %d: loss %v vs %v", kind, n, step, i, fleetLosses[i], wantLoss)
					}
				}
			}
			for i := range fleetMembers {
				fp := fleetMembers[i].Params()
				sp := soloMembers[i].Params()
				for pi := range fp {
					requireBitsEqual(t, kind+" trained params", fp[pi].Data, sp[pi].Data)
				}
			}
		}
	}
}

// TestFleetGatherScatterRoundTrip checks Gather→Scatter is the identity
// and that Scatter propagates slab edits into members.
func TestFleetGatherScatterRoundTrip(t *testing.T) {
	f, members, _, _ := buildFleet(t, "lstm", 3)
	before := make([][]float64, 0)
	for _, m := range members {
		for _, p := range m.Params() {
			before = append(before, append([]float64(nil), p.Data...))
		}
	}
	f.Gather()
	f.Scatter()
	idx := 0
	for _, m := range members {
		for _, p := range m.Params() {
			requireBitsEqual(t, "round-trip", p.Data, before[idx])
			idx++
		}
	}
	f.SlabParams(1)[0].Data[0] = 42
	f.Scatter()
	if members[1].Params()[0].Data[0] != 42 {
		t.Fatal("Scatter did not propagate slab edit to member")
	}
}

// TestNewFleetRejectsMismatches checks the fallback-triggering error paths:
// empty fleets, unsupported layers, and architecture mismatches.
func TestNewFleetRejectsMismatches(t *testing.T) {
	if _, err := NewFleet(nil); err == nil {
		t.Fatal("NewFleet(nil) should error")
	}
	rng := rand.New(rand.NewSource(1))
	withSoftmax := NewSequential(NewDenseXavier(rng, 4, 3), NewSoftmax())
	if _, err := NewFleet([]*Sequential{withSoftmax}); err == nil {
		t.Fatal("unsupported layer should error")
	}
	a := NewSequential(NewDenseXavier(rng, 4, 3))
	b := NewSequential(NewDenseXavier(rng, 4, 5))
	if _, err := NewFleet([]*Sequential{a, b}); err == nil {
		t.Fatal("shape mismatch should error")
	}
	c := NewSequential(NewDenseXavier(rng, 4, 3), NewSigmoid())
	if _, err := NewFleet([]*Sequential{a, c}); err == nil {
		t.Fatal("layer count mismatch should error")
	}
	d := NewSequential(NewLSTM(rng, 1, 3, 4))
	e := NewSequential(NewLSTM(rng, 1, 3, 5))
	if _, err := NewFleet([]*Sequential{d, e}); err == nil {
		t.Fatal("LSTM seqLen mismatch should error")
	}
}
