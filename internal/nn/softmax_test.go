package nn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

func TestSoftmaxRowsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := tensor.RandNormal(rng, 5, 7, 0, 3)
	y := NewSoftmax().Forward(x)
	for r := 0; r < y.Rows; r++ {
		sum := 0.0
		for _, v := range y.Row(r) {
			if v <= 0 || v >= 1 {
				t.Fatalf("softmax value %v outside (0,1)", v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("row %d sums to %v", r, sum)
		}
	}
}

func TestSoftmaxNumericalStability(t *testing.T) {
	x := tensor.NewFromSlice(1, 3, []float64{1000, 1001, 999})
	y := NewSoftmax().Forward(x)
	for _, v := range y.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("softmax overflowed on large logits")
		}
	}
	if y.Data[1] <= y.Data[0] || y.Data[0] <= y.Data[2] {
		t.Fatal("softmax ordering wrong")
	}
}

func TestSoftmaxBackwardBeforeForwardPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSoftmax().Backward(tensor.New(1, 3))
}

func TestGradCheckSoftmaxCrossEntropy(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	model := NewSequential(NewDenseXavier(rng, 4, 3), NewSoftmax())
	x := tensor.RandNormal(rng, 3, 4, 0, 1)
	// One-hot targets.
	y := tensor.New(3, 3)
	for r := 0; r < 3; r++ {
		y.Set(r, r%3, 1)
	}
	loss := CrossEntropy{}
	lossFn := func() float64 {
		p := model.Forward(x)
		l, _ := loss.Loss(p, y)
		return l
	}
	model.ZeroGrads()
	p0 := model.Forward(x)
	_, g := loss.Loss(p0, y)
	model.Backward(g)
	for pi, p := range model.Params() {
		grad := model.Grads()[pi]
		for idx := 0; idx < p.Size(); idx += 2 {
			want := numericGradParam(p, idx, lossFn)
			got := grad.Data[idx]
			if math.Abs(got-want) > 1e-5*(1+math.Abs(want)) {
				t.Fatalf("param %d elem %d: analytic %.8g vs numeric %.8g", pi, idx, got, want)
			}
		}
	}
}

func TestSoftmaxClassifierLearns(t *testing.T) {
	// 3-class problem: class = argmax of the first three inputs.
	rng := rand.New(rand.NewSource(3))
	model := NewSequential(NewDenseXavier(rng, 3, 16), NewTanh(), NewDenseXavier(rng, 16, 3), NewSoftmax())
	opt := &Adam{LR: 0.02}
	for i := 0; i < 500; i++ {
		x := tensor.RandNormal(rng, 16, 3, 0, 1)
		y := tensor.New(16, 3)
		for r := 0; r < 16; r++ {
			row := x.Row(r)
			bi := 0
			for c, v := range row[1:] {
				if v > row[bi] {
					bi = c + 1
				}
			}
			y.Set(r, bi, 1)
		}
		FitBatch(model, CrossEntropy{}, opt, x, y)
	}
	correct := 0
	for i := 0; i < 200; i++ {
		x := tensor.RandNormal(rng, 1, 3, 0, 1)
		want := x.ArgMax()
		pred := model.Forward(x).ArgMax()
		if pred == want {
			correct++
		}
	}
	if correct < 170 {
		t.Fatalf("classifier accuracy %d/200", correct)
	}
}

func TestWeightedAverageParamSets(t *testing.T) {
	mk := func(v float64) []*tensor.Matrix {
		return []*tensor.Matrix{tensor.Full(2, 2, v)}
	}
	dst := mk(0)
	n := WeightedAverageParamSets(dst, [][]*tensor.Matrix{mk(1), mk(4)}, []float64{3, 1})
	if n != 2 {
		t.Fatalf("averaged %d", n)
	}
	want := (3.0*1 + 1.0*4) / 4
	if math.Abs(dst[0].Data[0]-want) > 1e-12 {
		t.Fatalf("weighted mean %v, want %v", dst[0].Data[0], want)
	}
	// NaN set skipped with its weight.
	bad := mk(2)
	bad[0].Data[0] = math.NaN()
	dst = mk(0)
	n = WeightedAverageParamSets(dst, [][]*tensor.Matrix{mk(1), bad}, []float64{1, 100})
	if n != 1 || dst[0].Data[3] != 1 {
		t.Fatalf("NaN set not skipped: n=%d val=%v", n, dst[0].Data[3])
	}
	// Equal weights reduce to AverageParamSets.
	dst = mk(0)
	WeightedAverageParamSets(dst, [][]*tensor.Matrix{mk(1), mk(3)}, []float64{5, 5})
	if dst[0].Data[0] != 2 {
		t.Fatalf("equal-weight mean %v", dst[0].Data[0])
	}
	// Errors.
	for _, f := range []func(){
		func() { WeightedAverageParamSets(mk(0), [][]*tensor.Matrix{mk(1)}, []float64{1, 2}) },
		func() { WeightedAverageParamSets(mk(0), [][]*tensor.Matrix{mk(1)}, []float64{0}) },
		func() { WeightedAverageParamSets(mk(0), [][]*tensor.Matrix{{tensor.New(1, 1)}}, []float64{1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}
