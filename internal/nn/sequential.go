package nn

import (
	"bytes"
	"fmt"
	"io"
	"strings"

	"repro/internal/tensor"
)

// Sequential chains layers end to end. It is the model container used for
// every network in the reproduction: the BP and LSTM forecasters and the
// DQN's 8-hidden-layer MLP.
type Sequential struct {
	Layers []Layer
}

// NewSequential returns a model over the given layers.
func NewSequential(layers ...Layer) *Sequential {
	return &Sequential{Layers: layers}
}

// Forward implements Layer by chaining every stage. Adjacent
// Dense→Activation pairs — the shape of every hidden layer in both the DQN
// MLP and the forecaster heads — run through the fused forward kernel,
// which computes matmul, bias, and activation in one cache-hot sweep. The
// fusion leaves both layers' caches bit-identical to separate Forward
// calls, so Backward is unaffected.
func (s *Sequential) Forward(x *tensor.Matrix) *tensor.Matrix {
	for i := 0; i < len(s.Layers); i++ {
		if d, ok := s.Layers[i].(*Dense); ok && i+1 < len(s.Layers) {
			if act, ok := s.Layers[i+1].(*Activation); ok {
				x = d.forwardFused(x, act)
				i++
				continue
			}
		}
		x = s.Layers[i].Forward(x)
	}
	return x
}

// Backward implements Layer by chaining gradients in reverse.
func (s *Sequential) Backward(grad *tensor.Matrix) *tensor.Matrix {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		grad = s.Layers[i].Backward(grad)
	}
	return grad
}

// Params implements Layer, concatenating every layer's parameters in order.
func (s *Sequential) Params() []*tensor.Matrix {
	var out []*tensor.Matrix
	for _, l := range s.Layers {
		out = append(out, l.Params()...)
	}
	return out
}

// Grads implements Layer.
func (s *Sequential) Grads() []*tensor.Matrix {
	var out []*tensor.Matrix
	for _, l := range s.Layers {
		out = append(out, l.Grads()...)
	}
	return out
}

// ZeroGrads implements Layer.
func (s *Sequential) ZeroGrads() {
	for _, l := range s.Layers {
		l.ZeroGrads()
	}
}

// Name implements Layer.
func (s *Sequential) Name() string {
	names := make([]string, len(s.Layers))
	for i, l := range s.Layers {
		names[i] = l.Name()
	}
	return "Sequential[" + strings.Join(names, " -> ") + "]"
}

// TrainableLayers returns the indices (into Layers) of layers that carry
// parameters. The FedPer base/personalization split is expressed in terms of
// trainable-layer positions: "α base layers" means the first α entries of
// this slice are federated and the rest stay local.
func (s *Sequential) TrainableLayers() []int {
	var idx []int
	for i, l := range s.Layers {
		if len(l.Params()) > 0 {
			idx = append(idx, i)
		}
	}
	return idx
}

// ParamsOfTrainableRange returns the parameters of trainable layers
// [from, to) in trainable-layer numbering. It panics on an invalid range.
func (s *Sequential) ParamsOfTrainableRange(from, to int) []*tensor.Matrix {
	tl := s.TrainableLayers()
	if from < 0 || to > len(tl) || from > to {
		panic(fmt.Sprintf("nn: trainable range [%d,%d) out of bounds for %d trainable layers", from, to, len(tl)))
	}
	var out []*tensor.Matrix
	for _, li := range tl[from:to] {
		out = append(out, s.Layers[li].Params()...)
	}
	return out
}

// NumTrainableLayers returns the count of parameterized layers.
func (s *Sequential) NumTrainableLayers() int { return len(s.TrainableLayers()) }

// NumParams returns the total number of scalar parameters.
func (s *Sequential) NumParams() int {
	n := 0
	for _, p := range s.Params() {
		n += p.Size()
	}
	return n
}

// CopyParamsFrom overwrites this model's parameters with src's. The two
// models must have identical architectures.
func (s *Sequential) CopyParamsFrom(src *Sequential) {
	dst := s.Params()
	from := src.Params()
	if len(dst) != len(from) {
		panic(fmt.Sprintf("nn: CopyParamsFrom param count mismatch %d vs %d", len(dst), len(from)))
	}
	for i := range dst {
		dst[i].CopyFrom(from[i])
	}
}

// WriteTo serializes every parameter matrix in order.
func (s *Sequential) WriteTo(w io.Writer) (int64, error) {
	var total int64
	for _, p := range s.Params() {
		n, err := p.WriteTo(w)
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// ReadFrom overwrites every parameter matrix in order from r. Architecture
// must already match the serialized source.
func (s *Sequential) ReadFrom(r io.Reader) (int64, error) {
	var total int64
	for _, p := range s.Params() {
		var m tensor.Matrix
		n, err := m.ReadFrom(r)
		total += n
		if err != nil {
			return total, err
		}
		if m.Rows != p.Rows || m.Cols != p.Cols {
			return total, fmt.Errorf("nn: serialized param %dx%d, model expects %dx%d", m.Rows, m.Cols, p.Rows, p.Cols)
		}
		p.CopyFrom(&m)
	}
	return total, nil
}

// MarshalParams returns the model parameters in the binary wire format.
func (s *Sequential) MarshalParams() ([]byte, error) {
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// UnmarshalParams loads parameters produced by MarshalParams.
func (s *Sequential) UnmarshalParams(data []byte) error {
	_, err := s.ReadFrom(bytes.NewReader(data))
	return err
}

// WireSize returns the number of bytes MarshalParams would produce; the
// fednet simulator uses it for communication accounting.
func (s *Sequential) WireSize() int {
	n := 0
	for _, p := range s.Params() {
		n += p.WireSize()
	}
	return n
}
