package nn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

func TestConv1DShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := NewConv1D(rng, 2, 3, 4, 10, 1)
	if c.OutLen() != 7 || c.OutWidth() != 21 {
		t.Fatalf("OutLen=%d OutWidth=%d", c.OutLen(), c.OutWidth())
	}
	y := c.Forward(tensor.New(5, 20))
	if y.Rows != 5 || y.Cols != 21 {
		t.Fatalf("output %dx%d", y.Rows, y.Cols)
	}
	d := NewConv1D(rng, 1, 1, 3, 10, 2) // dilated
	if d.OutLen() != 6 {
		t.Fatalf("dilated OutLen %d, want 6", d.OutLen())
	}
}

func TestConv1DInvalidConfigs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, f := range []func(){
		func() { NewConv1D(rng, 0, 1, 1, 4, 1) },
		func() { NewConv1D(rng, 1, 1, 5, 4, 1) }, // kernel doesn't fit
		func() { NewConv1D(rng, 1, 1, 3, 4, 2) }, // dilated kernel doesn't fit
		func() { NewConv1D(rng, 1, 1, 2, 4, 1).Forward(tensor.New(1, 5)) },
		func() { NewConv1D(rng, 1, 1, 2, 4, 1).Backward(tensor.New(1, 3)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestConv1DKnownValues(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := NewConv1D(rng, 1, 1, 2, 4, 1)
	c.W.Data[0], c.W.Data[1] = 1, -1 // difference filter
	c.B.Data[0] = 0.5
	y := c.Forward(tensor.NewRowVector([]float64{1, 3, 6, 10}))
	want := []float64{1 - 3 + 0.5, 3 - 6 + 0.5, 6 - 10 + 0.5}
	for i, w := range want {
		if math.Abs(y.Data[i]-w) > 1e-12 {
			t.Fatalf("conv[%d] = %v, want %v", i, y.Data[i], w)
		}
	}
}

func TestGradCheckConv1D(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	model := NewSequential(
		NewConv1D(rng, 2, 3, 3, 8, 1),
		NewReLU(),
		NewDenseXavier(rng, 18, 2),
	)
	checkModelGradients(t, model, 16, 3, MSE{}, 1e-5)
}

func TestGradCheckConv1DDilated(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	model := NewSequential(
		NewConv1D(rng, 1, 2, 3, 9, 2),
		NewTanh(),
		NewDenseXavier(rng, 10, 1),
	)
	checkModelGradients(t, model, 9, 2, MSE{}, 1e-5)
}

func TestDropoutTrainEval(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d := NewDropout(rng, 0.5)
	x := tensor.Full(4, 50, 1)
	y := d.Forward(x)
	zeros, scaled := 0, 0
	for _, v := range y.Data {
		switch v {
		case 0:
			zeros++
		case 2: // 1/keep with keep=0.5
			scaled++
		default:
			t.Fatalf("dropout produced %v, want 0 or 2", v)
		}
	}
	if zeros == 0 || scaled == 0 {
		t.Fatal("dropout mask degenerate")
	}
	// Backward masks gradients identically.
	g := d.Backward(tensor.Full(4, 50, 1))
	for i, v := range g.Data {
		if (y.Data[i] == 0) != (v == 0) {
			t.Fatal("gradient mask mismatches forward mask")
		}
	}
	// Eval mode: identity.
	d.SetTraining(false)
	if !d.Forward(x).Equal(x) {
		t.Fatal("eval-mode dropout not identity")
	}
	if !d.Backward(x).Equal(x) {
		t.Fatal("eval-mode backward not identity")
	}
}

func TestDropoutRatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("rate 1 accepted")
		}
	}()
	NewDropout(rand.New(rand.NewSource(1)), 1)
}

func TestDropoutPreservesExpectation(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	d := NewDropout(rng, 0.3)
	x := tensor.Full(100, 100, 1)
	y := d.Forward(x)
	if m := y.Mean(); math.Abs(m-1) > 0.05 {
		t.Fatalf("inverted dropout mean %v, want ~1", m)
	}
}
