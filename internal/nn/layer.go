// Package nn implements the from-scratch neural-network stack that backs
// both the DFL load forecasters (LSTM, BP) and the DQN agents in the PFDRL
// reproduction. It provides feed-forward and recurrent layers with exact
// backpropagation, standard losses (including the Huber loss the paper's
// DQN uses), first-order optimizers, and parameter flattening utilities so
// federated agents can broadcast, aggregate, and split models into base
// and personalization layers.
//
// All layers operate on batches: inputs are tensor.Matrix values with one
// example per row.
package nn

import (
	"fmt"
	"math/rand"

	"repro/internal/tensor"
)

// Layer is a differentiable network stage.
//
// Forward consumes a batch (one example per row) and caches whatever it
// needs for the matching Backward call. Backward consumes dL/d(output) and
// returns dL/d(input), accumulating parameter gradients internally.
// A Layer is not safe for concurrent use; each federated agent owns its own
// replica.
//
// Buffer ownership: the matrices returned by Forward and Backward are
// layer-owned workspaces, valid only until the layer's next Forward or
// Backward call. Callers that need the values longer must copy them
// (Clone/CopyFrom). In exchange, a steady-state Forward/Backward cycle at a
// fixed batch size performs zero heap allocations. See DESIGN.md, "Memory
// model & buffer ownership".
type Layer interface {
	// Forward computes the layer output for a batch x.
	Forward(x *tensor.Matrix) *tensor.Matrix
	// Backward propagates the output gradient and returns the input
	// gradient. It must be called after Forward with the same batch.
	Backward(grad *tensor.Matrix) *tensor.Matrix
	// Params returns the trainable parameter matrices (possibly empty).
	// Callers may mutate the returned matrices (the optimizer does).
	Params() []*tensor.Matrix
	// Grads returns gradient matrices aligned 1:1 with Params.
	Grads() []*tensor.Matrix
	// ZeroGrads clears accumulated gradients.
	ZeroGrads()
	// Name identifies the layer kind for diagnostics.
	Name() string
}

// Dense is a fully connected layer: y = x·W + b.
type Dense struct {
	W, B   *tensor.Matrix // W: in x out, B: 1 x out
	dW, dB *tensor.Matrix
	x      *tensor.Matrix // cached input

	// Workspaces, regrown only when the batch size changes: y is the
	// Forward output, dx the Backward input-gradient, dwTmp/dbTmp hold the
	// per-batch parameter gradients before accumulation into dW/dB.
	y, dx, dwTmp, dbTmp *tensor.Matrix
}

// NewDense returns a Dense layer with He-normal weights (suited to the ReLU
// stacks used by the DQN) and zero bias.
func NewDense(rng *rand.Rand, in, out int) *Dense {
	return &Dense{
		W:  tensor.HeNormal(rng, in, out),
		B:  tensor.New(1, out),
		dW: tensor.New(in, out),
		dB: tensor.New(1, out),
	}
}

// NewDenseXavier returns a Dense layer with Xavier-uniform weights (suited
// to tanh/sigmoid heads).
func NewDenseXavier(rng *rand.Rand, in, out int) *Dense {
	return &Dense{
		W:  tensor.XavierUniform(rng, in, out),
		B:  tensor.New(1, out),
		dW: tensor.New(in, out),
		dB: tensor.New(1, out),
	}
}

// In returns the layer's input width.
func (d *Dense) In() int { return d.W.Rows }

// Out returns the layer's output width.
func (d *Dense) Out() int { return d.W.Cols }

// Forward implements Layer. The returned matrix is a layer-owned workspace.
func (d *Dense) Forward(x *tensor.Matrix) *tensor.Matrix {
	if x.Cols != d.W.Rows {
		panic(fmt.Sprintf("nn: Dense forward input width %d, want %d", x.Cols, d.W.Rows))
	}
	d.x = x
	d.y = tensor.EnsureShape(d.y, x.Rows, d.W.Cols)
	tensor.DenseForwardInto(d.y, x, d.W, d.B)
	return d.y
}

// forwardFused runs this layer and the following activation in one fused
// sweep (Sequential's Dense→Activation peephole). Both layers' caches end
// up exactly as if Forward had been called on each in turn — act.x aliases
// d.y, as it would under separate calls — so the unfused Backward path
// applies unchanged.
func (d *Dense) forwardFused(x *tensor.Matrix, act *Activation) *tensor.Matrix {
	if x.Cols != d.W.Rows {
		panic(fmt.Sprintf("nn: Dense forward input width %d, want %d", x.Cols, d.W.Rows))
	}
	d.x = x
	d.y = tensor.EnsureShape(d.y, x.Rows, d.W.Cols)
	act.x = d.y
	act.y = tensor.EnsureShape(act.y, x.Rows, d.W.Cols)
	tensor.DenseForwardApplyInto(d.y, act.y, x, d.W, d.B, act.fn)
	return act.y
}

// Backward implements Layer. The returned matrix is a layer-owned workspace.
func (d *Dense) Backward(grad *tensor.Matrix) *tensor.Matrix {
	if d.x == nil {
		panic("nn: Dense Backward called before Forward")
	}
	// dW += xᵀ·grad ; dB += column sums of grad ; dx = grad·Wᵀ — one fused
	// pass over the gradient rows.
	d.dwTmp = tensor.EnsureShape(d.dwTmp, d.W.Rows, d.W.Cols)
	d.dbTmp = tensor.EnsureShape(d.dbTmp, 1, grad.Cols)
	d.dx = tensor.EnsureShape(d.dx, grad.Rows, d.W.Rows)
	tensor.DenseBackwardInto(d.dwTmp, d.dbTmp, d.dx, d.x, d.W, grad)
	tensor.AddInto(d.dW, d.dW, d.dwTmp)
	tensor.AddInto(d.dB, d.dB, d.dbTmp)
	return d.dx
}

// Params implements Layer.
func (d *Dense) Params() []*tensor.Matrix { return []*tensor.Matrix{d.W, d.B} }

// Grads implements Layer.
func (d *Dense) Grads() []*tensor.Matrix { return []*tensor.Matrix{d.dW, d.dB} }

// ZeroGrads implements Layer.
func (d *Dense) ZeroGrads() {
	d.dW.Zero()
	d.dB.Zero()
}

// Name implements Layer.
func (d *Dense) Name() string { return fmt.Sprintf("Dense(%dx%d)", d.W.Rows, d.W.Cols) }
