package nn

import (
	"math/rand"

	"repro/internal/tensor"
)

// NewMLP builds a multilayer perceptron with ReLU activations between Dense
// layers and a linear output head. widths lists every layer width including
// input and output, e.g. NewMLP(rng, 120, 100, 100, 3) builds
// 120→100→ReLU→100→ReLU→... →3.
//
// The paper's DQN is NewMLP(rng, stateDim, 100×8 hidden, 3): eight hidden
// layers of 100 neurons each followed by ReLU, and a 3-neuron linear output
// giving Q-values for {off, standby, on}.
func NewMLP(rng *rand.Rand, widths ...int) *Sequential {
	if len(widths) < 2 {
		panic("nn: NewMLP needs at least input and output widths")
	}
	var layers []Layer
	for i := 0; i < len(widths)-1; i++ {
		layers = append(layers, NewDense(rng, widths[i], widths[i+1]))
		if i < len(widths)-2 {
			layers = append(layers, NewReLU())
		}
	}
	return NewSequential(layers...)
}

// NewLSTMRegressor builds the paper's LSTM load forecaster: an LSTM over a
// lag window followed by a linear head producing horizon outputs.
func NewLSTMRegressor(rng *rand.Rand, seqLen, hidden, horizon int) *Sequential {
	return NewSequential(
		NewLSTM(rng, 1, hidden, seqLen),
		NewDenseXavier(rng, hidden, horizon),
	)
}

// FitBatch runs one optimization step over a batch: forward pass, loss,
// backward pass, optimizer update. It returns the batch loss.
func FitBatch(model *Sequential, loss Loss, opt Optimizer, x, y *tensor.Matrix) float64 {
	model.ZeroGrads()
	pred := model.Forward(x)
	l, grad := loss.Loss(pred, y)
	model.Backward(grad)
	opt.Step(model.Params(), model.Grads())
	return l
}
