package nn

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// LSTM is a single-layer long short-term memory network unrolled over a
// fixed sequence length, returning the final hidden state. This matches the
// paper's use: the forecaster consumes a lag window of per-minute energy
// readings and emits a hidden representation of the usage pattern, which a
// Dense head turns into the next-hour prediction.
//
// The input batch has shape batch x (SeqLen*InputSize), laid out timestep-
// major: columns [t*InputSize, (t+1)*InputSize) hold the features of step t.
// The output has shape batch x Hidden.
//
// Gate weights are packed into one matrix W of shape
// (InputSize+Hidden) x 4*Hidden with gate order [input, forget, cell, output],
// plus a 1 x 4*Hidden bias. The forget-gate bias is initialized to 1, the
// standard trick that keeps early memories alive during the first epochs.
type LSTM struct {
	InputSize, Hidden, SeqLen int

	W, B   *tensor.Matrix
	dW, dB *tensor.Matrix

	// Per-timestep caches for backpropagation through time.
	zs             []*tensor.Matrix // concatenated [x_t, h_{t-1}]
	is, fs, gs, os []*tensor.Matrix
	cs, hs         []*tensor.Matrix // cell and hidden states, index 0..SeqLen (0 = initial)
	tanhCs         []*tensor.Matrix
	batch          int
}

// NewLSTM returns an LSTM over sequences of seqLen steps with inputSize
// features per step and a hidden state of the given width.
func NewLSTM(rng *rand.Rand, inputSize, hidden, seqLen int) *LSTM {
	if inputSize < 1 || hidden < 1 || seqLen < 1 {
		panic(fmt.Sprintf("nn: invalid LSTM config in=%d hidden=%d seq=%d", inputSize, hidden, seqLen))
	}
	l := &LSTM{
		InputSize: inputSize,
		Hidden:    hidden,
		SeqLen:    seqLen,
		W:         tensor.XavierUniform(rng, inputSize+hidden, 4*hidden),
		B:         tensor.New(1, 4*hidden),
		dW:        tensor.New(inputSize+hidden, 4*hidden),
		dB:        tensor.New(1, 4*hidden),
	}
	for c := hidden; c < 2*hidden; c++ { // forget-gate bias = 1
		l.B.Data[c] = 1
	}
	return l
}

// Forward implements Layer. It unrolls the recurrence over SeqLen steps and
// returns the final hidden state h_T.
func (l *LSTM) Forward(x *tensor.Matrix) *tensor.Matrix {
	if x.Cols != l.SeqLen*l.InputSize {
		panic(fmt.Sprintf("nn: LSTM forward input width %d, want %d", x.Cols, l.SeqLen*l.InputSize))
	}
	b := x.Rows
	l.batch = b
	h := l.Hidden
	l.zs = make([]*tensor.Matrix, l.SeqLen)
	l.is = make([]*tensor.Matrix, l.SeqLen)
	l.fs = make([]*tensor.Matrix, l.SeqLen)
	l.gs = make([]*tensor.Matrix, l.SeqLen)
	l.os = make([]*tensor.Matrix, l.SeqLen)
	l.tanhCs = make([]*tensor.Matrix, l.SeqLen)
	l.cs = make([]*tensor.Matrix, l.SeqLen+1)
	l.hs = make([]*tensor.Matrix, l.SeqLen+1)
	l.cs[0] = tensor.New(b, h)
	l.hs[0] = tensor.New(b, h)

	for t := 0; t < l.SeqLen; t++ {
		xt := x.SliceCols(t*l.InputSize, (t+1)*l.InputSize)
		z := tensor.Concat(xt, l.hs[t])
		pre := tensor.MatMul(z, l.W)
		pre.AddRowVectorInPlace(l.B)

		it := tensor.New(b, h)
		ft := tensor.New(b, h)
		gt := tensor.New(b, h)
		ot := tensor.New(b, h)
		ct := tensor.New(b, h)
		tct := tensor.New(b, h)
		ht := tensor.New(b, h)
		for r := 0; r < b; r++ {
			preRow := pre.Row(r)
			cPrev := l.cs[t].Row(r)
			for c := 0; c < h; c++ {
				iv := sigmoid(preRow[c])
				fv := sigmoid(preRow[h+c])
				gv := math.Tanh(preRow[2*h+c])
				ov := sigmoid(preRow[3*h+c])
				cv := fv*cPrev[c] + iv*gv
				tcv := math.Tanh(cv)
				it.Row(r)[c] = iv
				ft.Row(r)[c] = fv
				gt.Row(r)[c] = gv
				ot.Row(r)[c] = ov
				ct.Row(r)[c] = cv
				tct.Row(r)[c] = tcv
				ht.Row(r)[c] = ov * tcv
			}
		}
		l.zs[t], l.is[t], l.fs[t], l.gs[t], l.os[t] = z, it, ft, gt, ot
		l.cs[t+1], l.tanhCs[t], l.hs[t+1] = ct, tct, ht
	}
	return l.hs[l.SeqLen]
}

// Backward implements Layer: backpropagation through time from the gradient
// on the final hidden state. Returns the gradient with respect to the input
// window (batch x SeqLen*InputSize).
func (l *LSTM) Backward(grad *tensor.Matrix) *tensor.Matrix {
	if l.zs == nil {
		panic("nn: LSTM Backward called before Forward")
	}
	b, h := l.batch, l.Hidden
	if grad.Rows != b || grad.Cols != h {
		panic(fmt.Sprintf("nn: LSTM backward grad shape %dx%d, want %dx%d", grad.Rows, grad.Cols, b, h))
	}
	dx := tensor.New(b, l.SeqLen*l.InputSize)
	dh := grad.Clone()
	dc := tensor.New(b, h)
	dpre := tensor.New(b, 4*h)

	for t := l.SeqLen - 1; t >= 0; t-- {
		it, ft, gt, ot := l.is[t], l.fs[t], l.gs[t], l.os[t]
		tct := l.tanhCs[t]
		cPrev := l.cs[t]
		for r := 0; r < b; r++ {
			dhR, dcR := dh.Row(r), dc.Row(r)
			iR, fR, gR, oR := it.Row(r), ft.Row(r), gt.Row(r), ot.Row(r)
			tcR, cpR := tct.Row(r), cPrev.Row(r)
			dpreR := dpre.Row(r)
			for c := 0; c < h; c++ {
				do := dhR[c] * tcR[c]
				dcTot := dcR[c] + dhR[c]*oR[c]*(1-tcR[c]*tcR[c])
				di := dcTot * gR[c]
				df := dcTot * cpR[c]
				dg := dcTot * iR[c]
				dpreR[c] = di * iR[c] * (1 - iR[c])
				dpreR[h+c] = df * fR[c] * (1 - fR[c])
				dpreR[2*h+c] = dg * (1 - gR[c]*gR[c])
				dpreR[3*h+c] = do * oR[c] * (1 - oR[c])
				dcR[c] = dcTot * fR[c] // becomes dc_{t-1}
			}
		}
		// Accumulate parameter gradients and propagate to z = [x_t, h_{t-1}].
		dwT := tensor.MatMulTransA(l.zs[t], dpre)
		tensor.AddInto(l.dW, l.dW, dwT)
		tensor.AddInto(l.dB, l.dB, dpre.ColSums())
		dz := tensor.MatMulTransB(dpre, l.W)
		for r := 0; r < b; r++ {
			dzR := dz.Row(r)
			copy(dx.Row(r)[t*l.InputSize:(t+1)*l.InputSize], dzR[:l.InputSize])
			copy(dh.Row(r), dzR[l.InputSize:])
		}
	}
	return dx
}

// Params implements Layer.
func (l *LSTM) Params() []*tensor.Matrix { return []*tensor.Matrix{l.W, l.B} }

// Grads implements Layer.
func (l *LSTM) Grads() []*tensor.Matrix { return []*tensor.Matrix{l.dW, l.dB} }

// ZeroGrads implements Layer.
func (l *LSTM) ZeroGrads() {
	l.dW.Zero()
	l.dB.Zero()
}

// Name implements Layer.
func (l *LSTM) Name() string {
	return fmt.Sprintf("LSTM(in=%d,h=%d,T=%d)", l.InputSize, l.Hidden, l.SeqLen)
}
