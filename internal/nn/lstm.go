package nn

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// LSTM is a single-layer long short-term memory network unrolled over a
// fixed sequence length, returning the final hidden state. This matches the
// paper's use: the forecaster consumes a lag window of per-minute energy
// readings and emits a hidden representation of the usage pattern, which a
// Dense head turns into the next-hour prediction.
//
// The input batch has shape batch x (SeqLen*InputSize), laid out timestep-
// major: columns [t*InputSize, (t+1)*InputSize) hold the features of step t.
// The output has shape batch x Hidden.
//
// Gate weights are packed into one matrix W of shape
// (InputSize+Hidden) x 4*Hidden with gate order [input, forget, cell, output],
// plus a 1 x 4*Hidden bias. The forget-gate bias is initialized to 1, the
// standard trick that keeps early memories alive during the first epochs.
type LSTM struct {
	InputSize, Hidden, SeqLen int

	W, B   *tensor.Matrix
	dW, dB *tensor.Matrix

	// Per-timestep caches for backpropagation through time. They double as
	// workspaces: allocated on first use and reshaped in place when the
	// batch size changes, so steady-state training allocates nothing.
	zs             []*tensor.Matrix // concatenated [x_t, h_{t-1}]
	is, fs, gs, os []*tensor.Matrix
	cs, hs         []*tensor.Matrix // cell and hidden states, index 0..SeqLen (0 = initial)
	tanhCs         []*tensor.Matrix
	batch          int

	// Scratch reused across calls: gate pre-activations in Forward;
	// gradient carriers and per-step parameter gradients in Backward.
	pre              *tensor.Matrix
	dxBuf, dhBuf, dc *tensor.Matrix
	dpre, dz         *tensor.Matrix
	dwStep, dbStep   *tensor.Matrix
}

// NewLSTM returns an LSTM over sequences of seqLen steps with inputSize
// features per step and a hidden state of the given width.
func NewLSTM(rng *rand.Rand, inputSize, hidden, seqLen int) *LSTM {
	if inputSize < 1 || hidden < 1 || seqLen < 1 {
		panic(fmt.Sprintf("nn: invalid LSTM config in=%d hidden=%d seq=%d", inputSize, hidden, seqLen))
	}
	l := &LSTM{
		InputSize: inputSize,
		Hidden:    hidden,
		SeqLen:    seqLen,
		W:         tensor.XavierUniform(rng, inputSize+hidden, 4*hidden),
		B:         tensor.New(1, 4*hidden),
		dW:        tensor.New(inputSize+hidden, 4*hidden),
		dB:        tensor.New(1, 4*hidden),
	}
	for c := hidden; c < 2*hidden; c++ { // forget-gate bias = 1
		l.B.Data[c] = 1
	}
	return l
}

// ensureCaches sizes every per-timestep cache and the Forward scratch for
// the given batch, reusing backing storage whenever capacity allows.
func (l *LSTM) ensureCaches(b int) {
	if l.zs == nil {
		l.zs = make([]*tensor.Matrix, l.SeqLen)
		l.is = make([]*tensor.Matrix, l.SeqLen)
		l.fs = make([]*tensor.Matrix, l.SeqLen)
		l.gs = make([]*tensor.Matrix, l.SeqLen)
		l.os = make([]*tensor.Matrix, l.SeqLen)
		l.tanhCs = make([]*tensor.Matrix, l.SeqLen)
		l.cs = make([]*tensor.Matrix, l.SeqLen+1)
		l.hs = make([]*tensor.Matrix, l.SeqLen+1)
	}
	h := l.Hidden
	for t := 0; t < l.SeqLen; t++ {
		l.zs[t] = tensor.EnsureShape(l.zs[t], b, l.InputSize+h)
		l.is[t] = tensor.EnsureShape(l.is[t], b, h)
		l.fs[t] = tensor.EnsureShape(l.fs[t], b, h)
		l.gs[t] = tensor.EnsureShape(l.gs[t], b, h)
		l.os[t] = tensor.EnsureShape(l.os[t], b, h)
		l.tanhCs[t] = tensor.EnsureShape(l.tanhCs[t], b, h)
	}
	for t := 0; t <= l.SeqLen; t++ {
		l.cs[t] = tensor.EnsureShape(l.cs[t], b, h)
		l.hs[t] = tensor.EnsureShape(l.hs[t], b, h)
	}
	l.pre = tensor.EnsureShape(l.pre, b, 4*h)
}

// Forward implements Layer. It unrolls the recurrence over SeqLen steps and
// returns the final hidden state h_T (a layer-owned workspace, valid until
// the next Forward call).
func (l *LSTM) Forward(x *tensor.Matrix) *tensor.Matrix {
	if x.Cols != l.SeqLen*l.InputSize {
		panic(fmt.Sprintf("nn: LSTM forward input width %d, want %d", x.Cols, l.SeqLen*l.InputSize))
	}
	b := x.Rows
	l.batch = b
	h := l.Hidden
	in := l.InputSize
	l.ensureCaches(b)
	l.cs[0].Zero()
	l.hs[0].Zero()

	for t := 0; t < l.SeqLen; t++ {
		// z = [x_t | h_{t-1}], written directly into the reused cache.
		z := l.zs[t]
		hPrev := l.hs[t]
		zw := in + h
		for r := 0; r < b; r++ {
			zRow := z.Data[r*zw : (r+1)*zw]
			copy(zRow[:in], x.Data[r*x.Cols+t*in:r*x.Cols+(t+1)*in])
			copy(zRow[in:], hPrev.Data[r*h:(r+1)*h])
		}
		pre := l.pre
		tensor.DenseForwardInto(pre, z, l.W, l.B)

		it, ft, gt, ot := l.is[t], l.fs[t], l.gs[t], l.os[t]
		ct, tct, ht := l.cs[t+1], l.tanhCs[t], l.hs[t+1]
		cPrevM := l.cs[t]
		for r := 0; r < b; r++ {
			preRow := pre.Data[r*4*h : (r+1)*4*h]
			cPrev := cPrevM.Data[r*h : (r+1)*h]
			iRow := it.Data[r*h : (r+1)*h]
			fRow := ft.Data[r*h : (r+1)*h]
			gRow := gt.Data[r*h : (r+1)*h]
			oRow := ot.Data[r*h : (r+1)*h]
			cRow := ct.Data[r*h : (r+1)*h]
			tcRow := tct.Data[r*h : (r+1)*h]
			hRow := ht.Data[r*h : (r+1)*h]
			for c := 0; c < h; c++ {
				iv := sigmoid(preRow[c])
				fv := sigmoid(preRow[h+c])
				gv := math.Tanh(preRow[2*h+c])
				ov := sigmoid(preRow[3*h+c])
				cv := fv*cPrev[c] + iv*gv
				tcv := math.Tanh(cv)
				iRow[c] = iv
				fRow[c] = fv
				gRow[c] = gv
				oRow[c] = ov
				cRow[c] = cv
				tcRow[c] = tcv
				hRow[c] = ov * tcv
			}
		}
	}
	return l.hs[l.SeqLen]
}

// Backward implements Layer: backpropagation through time from the gradient
// on the final hidden state. Returns the gradient with respect to the input
// window (batch x SeqLen*InputSize), a layer-owned workspace.
func (l *LSTM) Backward(grad *tensor.Matrix) *tensor.Matrix {
	if l.zs == nil {
		panic("nn: LSTM Backward called before Forward")
	}
	b, h := l.batch, l.Hidden
	if grad.Rows != b || grad.Cols != h {
		panic(fmt.Sprintf("nn: LSTM backward grad shape %dx%d, want %dx%d", grad.Rows, grad.Cols, b, h))
	}
	in := l.InputSize
	l.dxBuf = tensor.EnsureShape(l.dxBuf, b, l.SeqLen*in)
	l.dhBuf = tensor.EnsureShape(l.dhBuf, b, h)
	l.dc = tensor.EnsureShape(l.dc, b, h)
	l.dpre = tensor.EnsureShape(l.dpre, b, 4*h)
	l.dz = tensor.EnsureShape(l.dz, b, in+h)
	l.dwStep = tensor.EnsureShape(l.dwStep, in+h, 4*h)
	l.dbStep = tensor.EnsureShape(l.dbStep, 1, 4*h)
	dx, dh, dc, dpre, dz := l.dxBuf, l.dhBuf, l.dc, l.dpre, l.dz
	dh.CopyFrom(grad)
	dc.Zero()

	for t := l.SeqLen - 1; t >= 0; t-- {
		it, ft, gt, ot := l.is[t], l.fs[t], l.gs[t], l.os[t]
		tct := l.tanhCs[t]
		cPrev := l.cs[t]
		for r := 0; r < b; r++ {
			dhR := dh.Data[r*h : (r+1)*h]
			dcR := dc.Data[r*h : (r+1)*h]
			iR := it.Data[r*h : (r+1)*h]
			fR := ft.Data[r*h : (r+1)*h]
			gR := gt.Data[r*h : (r+1)*h]
			oR := ot.Data[r*h : (r+1)*h]
			tcR := tct.Data[r*h : (r+1)*h]
			cpR := cPrev.Data[r*h : (r+1)*h]
			dpreR := dpre.Data[r*4*h : (r+1)*4*h]
			for c := 0; c < h; c++ {
				do := dhR[c] * tcR[c]
				dcTot := dcR[c] + dhR[c]*oR[c]*(1-tcR[c]*tcR[c])
				di := dcTot * gR[c]
				df := dcTot * cpR[c]
				dg := dcTot * iR[c]
				dpreR[c] = di * iR[c] * (1 - iR[c])
				dpreR[h+c] = df * fR[c] * (1 - fR[c])
				dpreR[2*h+c] = dg * (1 - gR[c]*gR[c])
				dpreR[3*h+c] = do * oR[c] * (1 - oR[c])
				dcR[c] = dcTot * fR[c] // becomes dc_{t-1}
			}
		}
		// Accumulate parameter gradients and propagate to z = [x_t, h_{t-1}].
		tensor.MatMulTransAInto(l.dwStep, l.zs[t], dpre)
		tensor.AddInto(l.dW, l.dW, l.dwStep)
		tensor.ColSumsInto(l.dbStep, dpre)
		tensor.AddInto(l.dB, l.dB, l.dbStep)
		tensor.MatMulTransBInto(dz, dpre, l.W)
		for r := 0; r < b; r++ {
			dzR := dz.Data[r*(in+h) : (r+1)*(in+h)]
			copy(dx.Data[r*l.SeqLen*in+t*in:r*l.SeqLen*in+(t+1)*in], dzR[:in])
			copy(dh.Data[r*h:(r+1)*h], dzR[in:])
		}
	}
	return dx
}

// Params implements Layer.
func (l *LSTM) Params() []*tensor.Matrix { return []*tensor.Matrix{l.W, l.B} }

// Grads implements Layer.
func (l *LSTM) Grads() []*tensor.Matrix { return []*tensor.Matrix{l.dW, l.dB} }

// ZeroGrads implements Layer.
func (l *LSTM) ZeroGrads() {
	l.dW.Zero()
	l.dB.Zero()
}

// Name implements Layer.
func (l *LSTM) Name() string {
	return fmt.Sprintf("LSTM(in=%d,h=%d,T=%d)", l.InputSize, l.Hidden, l.SeqLen)
}
