package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// FlattenParams copies a parameter set into one flat vector. Federated
// aggregation operates on these vectors: they are what agents broadcast
// (conceptually — the wire format keeps matrix framing, see Sequential).
func FlattenParams(params []*tensor.Matrix) []float64 {
	n := 0
	for _, p := range params {
		n += p.Size()
	}
	out := make([]float64, 0, n)
	for _, p := range params {
		out = append(out, p.Data...)
	}
	return out
}

// UnflattenParams copies a flat vector produced by FlattenParams back into
// the parameter matrices. It panics if the vector length does not match the
// parameter set exactly.
func UnflattenParams(params []*tensor.Matrix, flat []float64) {
	off := 0
	for _, p := range params {
		if off+p.Size() > len(flat) {
			panic(fmt.Sprintf("nn: UnflattenParams vector too short: have %d, need > %d", len(flat), off+p.Size()))
		}
		copy(p.Data, flat[off:off+p.Size()])
		off += p.Size()
	}
	if off != len(flat) {
		panic(fmt.Sprintf("nn: UnflattenParams vector too long: used %d of %d", off, len(flat)))
	}
}

// AverageParamSets overwrites dst with the elementwise mean of the given
// parameter sets (FedAvg, Eq. 2 / Eq. 7 of the paper). All sets must share
// dst's shapes. Sets containing NaN/Inf are skipped — a diverged or poisoned
// peer must not contaminate the aggregate — and the function reports how
// many sets were actually averaged. If every set is rejected, dst is left
// unchanged and 0 is returned.
func AverageParamSets(dst []*tensor.Matrix, sets ...[]*tensor.Matrix) int {
	if len(sets) == 0 {
		return 0
	}
	var clean [][]*tensor.Matrix
	for _, set := range sets {
		if len(set) != len(dst) {
			panic(fmt.Sprintf("nn: AverageParamSets set size %d, want %d", len(set), len(dst)))
		}
		ok := true
		for i, m := range set {
			if m.Rows != dst[i].Rows || m.Cols != dst[i].Cols {
				panic(fmt.Sprintf("nn: AverageParamSets param %d shape %dx%d, want %dx%d",
					i, m.Rows, m.Cols, dst[i].Rows, dst[i].Cols))
			}
			if m.HasNaN() {
				ok = false
				break
			}
		}
		if ok {
			clean = append(clean, set)
		}
	}
	if len(clean) == 0 {
		return 0
	}
	inv := 1.0 / float64(len(clean))
	for i, d := range dst {
		d.Zero()
		for _, set := range clean {
			d.AddScaled(set[i], inv)
		}
	}
	return len(clean)
}

// WeightedAverageParamSets overwrites dst with the weighted elementwise
// mean of the given parameter sets — the general FedAvg form where clients
// contribute proportionally to their sample counts. Sets containing
// NaN/Inf are skipped along with their weights; non-positive weights are
// rejected. It returns the number of sets actually averaged (0 leaves dst
// unchanged).
func WeightedAverageParamSets(dst []*tensor.Matrix, sets [][]*tensor.Matrix, weights []float64) int {
	if len(sets) != len(weights) {
		panic(fmt.Sprintf("nn: WeightedAverageParamSets %d sets vs %d weights", len(sets), len(weights)))
	}
	var clean [][]*tensor.Matrix
	var w []float64
	total := 0.0
	for si, set := range sets {
		if weights[si] <= 0 {
			panic(fmt.Sprintf("nn: WeightedAverageParamSets weight %v must be positive", weights[si]))
		}
		if len(set) != len(dst) {
			panic(fmt.Sprintf("nn: WeightedAverageParamSets set size %d, want %d", len(set), len(dst)))
		}
		ok := true
		for i, m := range set {
			if m.Rows != dst[i].Rows || m.Cols != dst[i].Cols {
				panic(fmt.Sprintf("nn: WeightedAverageParamSets param %d shape %dx%d, want %dx%d",
					i, m.Rows, m.Cols, dst[i].Rows, dst[i].Cols))
			}
			if m.HasNaN() {
				ok = false
				break
			}
		}
		if ok {
			clean = append(clean, set)
			w = append(w, weights[si])
			total += weights[si]
		}
	}
	if len(clean) == 0 {
		return 0
	}
	for i, d := range dst {
		d.Zero()
		for si, set := range clean {
			d.AddScaled(set[i], w[si]/total)
		}
	}
	return len(clean)
}

// CloneParams deep-copies a parameter set. Broadcast snapshots use this so
// that continued local training does not mutate in-flight messages.
func CloneParams(params []*tensor.Matrix) []*tensor.Matrix {
	out := make([]*tensor.Matrix, len(params))
	for i, p := range params {
		out[i] = p.Clone()
	}
	return out
}

// CopyParams copies src into dst elementwise. Shapes must match.
func CopyParams(dst, src []*tensor.Matrix) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("nn: CopyParams length mismatch %d vs %d", len(dst), len(src)))
	}
	for i := range dst {
		dst[i].CopyFrom(src[i])
	}
}

// ParamsWireSize returns the total serialized size of a parameter set.
func ParamsWireSize(params []*tensor.Matrix) int {
	n := 0
	for _, p := range params {
		n += p.WireSize()
	}
	return n
}
