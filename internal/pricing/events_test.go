package pricing

import (
	"math"
	"testing"
)

func TestWindowValidate(t *testing.T) {
	bad := []Window{
		{Day: -1, EndMin: 60, PriceFactor: 2},
		{Day: 5, EndMin: 60, PriceFactor: 2}, // beyond the 3-day run
		{StartMin: -1, EndMin: 60, PriceFactor: 2},
		{StartMin: 1440, EndMin: 1441, PriceFactor: 2},
		{StartMin: 60, EndMin: 60, PriceFactor: 2},
		{StartMin: 60, EndMin: 30, PriceFactor: 2},
		{EndMin: 2000, PriceFactor: 2},
		{EndMin: 60, PriceFactor: 0},
		{EndMin: 60, PriceFactor: -3},
	}
	for i, w := range bad {
		if err := w.Validate(3); err == nil {
			t.Errorf("bad window %d accepted: %+v", i, w)
		}
	}
	ok := Window{Day: 2, StartMin: 17 * 60, EndMin: 20 * 60, PriceFactor: 3}
	if err := ok.Validate(3); err != nil {
		t.Fatal(err)
	}
	// days ≤ 0 skips the day-range check (run length unknown yet).
	if err := (Window{Day: 99, EndMin: 60, PriceFactor: 2}).Validate(0); err != nil {
		t.Fatal(err)
	}
}

func TestOverlayPriceAt(t *testing.T) {
	o := &Overlay{
		Base: FixedRate{},
		Windows: []Window{
			{Day: 1, StartMin: 17 * 60, EndMin: 20 * 60, PriceFactor: 3},
			{Day: 1, StartMin: 2 * 60, EndMin: 4 * 60, PriceFactor: 0.5},
		},
	}
	if err := o.Validate(2); err != nil {
		t.Fatal(err)
	}
	base := FixedRate{}.PricePerKWh(6, 18*60)
	if got := o.PriceAt(0, 6, 18*60); got != base {
		t.Fatalf("day 0 price %g, want base %g", got, base)
	}
	if got, want := o.PriceAt(1, 6, 18*60), base*3; math.Abs(got-want) > 1e-15 {
		t.Fatalf("spike price %g, want %g", got, want)
	}
	if got, want := o.PriceAt(1, 6, 3*60), base*0.5; math.Abs(got-want) > 1e-15 {
		t.Fatalf("rebate price %g, want %g", got, want)
	}
	if got := o.PriceAt(1, 6, 20*60); got != base {
		t.Fatalf("post-window price %g, want base %g", got, base)
	}
}

func TestOverlayValidate(t *testing.T) {
	if err := (&Overlay{}).Validate(1); err == nil {
		t.Fatal("nil base tariff accepted")
	}
	overlapping := &Overlay{
		Base: FixedRate{},
		Windows: []Window{
			{Day: 0, StartMin: 600, EndMin: 720, PriceFactor: 2},
			{Day: 0, StartMin: 700, EndMin: 800, PriceFactor: 3},
		},
	}
	if err := overlapping.Validate(1); err == nil {
		t.Fatal("overlapping same-day windows accepted")
	}
	// Same minutes on different days are fine; touching windows
	// (end == start) on one day are fine too.
	ok := &Overlay{
		Base: FixedRate{},
		Windows: []Window{
			{Day: 0, StartMin: 600, EndMin: 720, PriceFactor: 2},
			{Day: 1, StartMin: 600, EndMin: 720, PriceFactor: 2},
			{Day: 0, StartMin: 720, EndMin: 800, PriceFactor: 3},
		},
	}
	if err := ok.Validate(2); err != nil {
		t.Fatal(err)
	}
	badWindow := &Overlay{Base: FixedRate{}, Windows: []Window{{EndMin: 60, PriceFactor: -1}}}
	if err := badWindow.Validate(1); err == nil {
		t.Fatal("invalid member window accepted")
	}
}
