// Package pricing models the two Texas electricity plans the paper prices
// savings against (Section 4, "Electricity Price"): a fixed-rate plan at
// the published average of 11.67 ¢/kWh, and a variable (time-of-use) plan
// whose rates span the published 0.8–20 ¢/kWh range with diurnal and
// seasonal structure. The variable plan's seasonal factors are calibrated
// so the two plans' annual totals roughly match while the monthly winner
// alternates, reproducing the crossover pattern of the paper's Figure 10
// (variable wins April–June, fixed wins August–October).
package pricing

import "fmt"

// Tariff prices energy at a given time.
type Tariff interface {
	// PricePerKWh returns the $/kWh rate in the given month (1–12) at the
	// given minute of the day (0–1439).
	PricePerKWh(month, minuteOfDay int) float64
	Name() string
}

// FixedRate is a flat tariff.
type FixedRate struct {
	// Rate is the flat $/kWh price; 0 selects the Texas average 0.1167.
	Rate float64
}

// DefaultFixedRate is the average fixed-rate Texas price in $/kWh.
const DefaultFixedRate = 0.1167

// PricePerKWh implements Tariff.
func (f FixedRate) PricePerKWh(month, minuteOfDay int) float64 {
	checkTime(month, minuteOfDay)
	if f.Rate <= 0 {
		return DefaultFixedRate
	}
	return f.Rate
}

// Name implements Tariff.
func (FixedRate) Name() string { return "fixed" }

// VariableRate is a time-of-use tariff: a base diurnal curve scaled by a
// per-month seasonal factor.
type VariableRate struct{}

// Name implements Tariff.
func (VariableRate) Name() string { return "variable" }

// seasonalFactor scales the diurnal curve per month. Values are calibrated
// so that (a) the annual mean price is near the fixed rate, (b) spring
// months price evening energy above the fixed rate and late-summer months
// below it — the Figure 10 crossover.
var seasonalFactor = [13]float64{0, // month index is 1-based
	1.00, // Jan
	0.98, // Feb
	1.05, // Mar
	1.22, // Apr
	1.28, // May
	1.25, // Jun
	1.05, // Jul
	0.68, // Aug
	0.64, // Sep
	0.70, // Oct
	0.95, // Nov
	1.02, // Dec
}

// PricePerKWh implements Tariff. The diurnal curve has four bands:
// deep night (0.8–6h) at the floor price, morning shoulder, midday
// plateau, and an evening peak hitting the 20 ¢ cap in peak months.
func (VariableRate) PricePerKWh(month, minuteOfDay int) float64 {
	checkTime(month, minuteOfDay)
	h := minuteOfDay / 60
	var base float64
	switch {
	case h < 6:
		base = 0.092
	case h < 9:
		base = 0.105
	case h < 17:
		base = 0.115
	case h < 22:
		base = 0.158
	default:
		base = 0.095
	}
	p := base * seasonalFactor[month]
	if p < 0.008 {
		p = 0.008
	}
	if p > 0.20 {
		p = 0.20
	}
	return p
}

func checkTime(month, minuteOfDay int) {
	if month < 1 || month > 12 {
		panic(fmt.Sprintf("pricing: month %d outside 1..12", month))
	}
	if minuteOfDay < 0 || minuteOfDay >= 24*60 {
		panic(fmt.Sprintf("pricing: minute %d outside 0..1439", minuteOfDay))
	}
}

// CostOfDay prices a per-minute kW series (1440 samples) for one day of the
// given month, returning dollars.
func CostOfDay(t Tariff, month int, kwPerMinute []float64) float64 {
	if len(kwPerMinute) != 24*60 {
		panic(fmt.Sprintf("pricing: day series has %d samples, want 1440", len(kwPerMinute)))
	}
	total := 0.0
	for m, kw := range kwPerMinute {
		total += kw / 60 * t.PricePerKWh(month, m)
	}
	return total
}

// CostOfHourlyKWh prices saved (or consumed) energy bucketed by hour of day
// for one day of the given month. Each bucket is priced at its hour's
// mid-hour rate.
func CostOfHourlyKWh(t Tariff, month int, kwhByHour [24]float64) float64 {
	total := 0.0
	for h, kwh := range kwhByHour {
		total += kwh * t.PricePerKWh(month, h*60+30)
	}
	return total
}

// MeanPrice returns the time-averaged $/kWh of a tariff over a month.
func MeanPrice(t Tariff, month int) float64 {
	sum := 0.0
	for m := 0; m < 24*60; m++ {
		sum += t.PricePerKWh(month, m)
	}
	return sum / (24 * 60)
}

// DaysInMonth returns the day count of a month in a non-leap year.
func DaysInMonth(month int) int {
	switch month {
	case 2:
		return 28
	case 4, 6, 9, 11:
		return 30
	default:
		return 31
	}
}
