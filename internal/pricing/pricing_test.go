package pricing

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFixedRateDefaultAndOverride(t *testing.T) {
	if got := (FixedRate{}).PricePerKWh(1, 0); got != DefaultFixedRate {
		t.Fatalf("default fixed rate %v", got)
	}
	if got := (FixedRate{Rate: 0.2}).PricePerKWh(6, 700); got != 0.2 {
		t.Fatalf("override fixed rate %v", got)
	}
	if (FixedRate{}).Name() != "fixed" || (VariableRate{}).Name() != "variable" {
		t.Fatal("names wrong")
	}
}

func TestVariableRateWithinPublishedRange(t *testing.T) {
	v := VariableRate{}
	for month := 1; month <= 12; month++ {
		for m := 0; m < 1440; m += 13 {
			p := v.PricePerKWh(month, m)
			if p < 0.008 || p > 0.20 {
				t.Fatalf("month %d minute %d price %v outside [0.008, 0.20]", month, m, p)
			}
		}
	}
}

func TestVariableRateDiurnalShape(t *testing.T) {
	v := VariableRate{}
	night := v.PricePerKWh(5, 3*60)
	evening := v.PricePerKWh(5, 19*60)
	midday := v.PricePerKWh(5, 13*60)
	if !(night < midday && midday < evening) {
		t.Fatalf("diurnal shape wrong: night=%v midday=%v evening=%v", night, midday, evening)
	}
}

func TestSeasonalCrossover(t *testing.T) {
	// Evening prices: variable above fixed April–June, below August–October.
	v := VariableRate{}
	f := FixedRate{}
	for _, month := range []int{4, 5, 6} {
		if v.PricePerKWh(month, 19*60) <= f.PricePerKWh(month, 19*60) {
			t.Fatalf("month %d: variable evening price should exceed fixed", month)
		}
	}
	for _, month := range []int{8, 9, 10} {
		if v.PricePerKWh(month, 19*60) >= f.PricePerKWh(month, 19*60) {
			t.Fatalf("month %d: fixed price should exceed variable evening", month)
		}
	}
}

func TestAnnualMeansComparable(t *testing.T) {
	// Annual mean of the variable plan should be within 30% of fixed
	// (the paper finds Fixed ≈ Variable overall).
	var sum float64
	for month := 1; month <= 12; month++ {
		sum += MeanPrice(VariableRate{}, month)
	}
	mean := sum / 12
	if math.Abs(mean-DefaultFixedRate)/DefaultFixedRate > 0.3 {
		t.Fatalf("annual variable mean %v too far from fixed %v", mean, DefaultFixedRate)
	}
}

func TestCostOfDay(t *testing.T) {
	kw := make([]float64, 1440)
	for i := range kw {
		kw[i] = 1.2 // constant 1.2 kW
	}
	got := CostOfDay(FixedRate{}, 3, kw)
	want := 1.2 * 24 * DefaultFixedRate
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("CostOfDay = %v, want %v", got, want)
	}
}

func TestCostOfDayPanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad length accepted")
		}
	}()
	CostOfDay(FixedRate{}, 1, make([]float64, 100))
}

func TestCostOfHourlyKWh(t *testing.T) {
	var buckets [24]float64
	buckets[19] = 2 // 2 kWh saved during the evening peak
	fixed := CostOfHourlyKWh(FixedRate{}, 5, buckets)
	variable := CostOfHourlyKWh(VariableRate{}, 5, buckets)
	if math.Abs(fixed-2*DefaultFixedRate) > 1e-9 {
		t.Fatalf("fixed hourly cost %v", fixed)
	}
	if variable <= fixed {
		t.Fatal("May evening savings should be worth more under the variable plan")
	}
}

func TestTimeValidation(t *testing.T) {
	cases := []func(){
		func() { FixedRate{}.PricePerKWh(0, 0) },
		func() { FixedRate{}.PricePerKWh(13, 0) },
		func() { VariableRate{}.PricePerKWh(1, -1) },
		func() { VariableRate{}.PricePerKWh(1, 1440) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: invalid time accepted", i)
				}
			}()
			f()
		}()
	}
}

func TestDaysInMonth(t *testing.T) {
	if DaysInMonth(2) != 28 || DaysInMonth(4) != 30 || DaysInMonth(1) != 31 || DaysInMonth(12) != 31 {
		t.Fatal("DaysInMonth wrong")
	}
	total := 0
	for m := 1; m <= 12; m++ {
		total += DaysInMonth(m)
	}
	if total != 365 {
		t.Fatalf("year has %d days", total)
	}
}

func TestPropPricesPositive(t *testing.T) {
	f := func(mo, mi uint16) bool {
		month := 1 + int(mo)%12
		minute := int(mi) % 1440
		return VariableRate{}.PricePerKWh(month, minute) > 0 &&
			FixedRate{}.PricePerKWh(month, minute) > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
