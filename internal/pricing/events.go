package pricing

import "fmt"

// Window is one demand-response pricing window: on day Day, minutes
// [StartMin, EndMin) price at PriceFactor × the base tariff rate. A
// factor > 1 models a scarcity price spike; a factor in (0,1) models a
// rebate window.
type Window struct {
	Day              int
	StartMin, EndMin int
	PriceFactor      float64
}

// active reports whether the window covers the given day-minute.
func (w Window) active(day, minuteOfDay int) bool {
	return day == w.Day && minuteOfDay >= w.StartMin && minuteOfDay < w.EndMin
}

// Validate checks the window against a run of `days` simulated days.
func (w Window) Validate(days int) error {
	if w.Day < 0 || (days > 0 && w.Day >= days) {
		return fmt.Errorf("pricing: DR window day %d outside [0,%d)", w.Day, days)
	}
	if w.StartMin < 0 || w.StartMin >= 24*60 {
		return fmt.Errorf("pricing: DR window StartMin %d outside [0,1440)", w.StartMin)
	}
	if w.EndMin <= w.StartMin || w.EndMin > 24*60 {
		return fmt.Errorf("pricing: DR window EndMin %d outside (%d,1440]", w.EndMin, w.StartMin)
	}
	if w.PriceFactor <= 0 {
		return fmt.Errorf("pricing: DR window PriceFactor %g must be positive", w.PriceFactor)
	}
	return nil
}

// Overlay layers scheduled demand-response windows on a base tariff.
// Tariff itself is day-agnostic (PricePerKWh sees only month and
// minute); DR events are calendar events, so the overlay adds the day
// axis via PriceAt. Windows on the same day must not overlap — the
// scenario validator rejects such configs; PriceAt applies the first
// matching window.
type Overlay struct {
	Base    Tariff
	Windows []Window
}

// PriceAt returns the $/kWh rate on simulated day `day` of the given
// month at the given minute, applying any active DR window's factor.
func (o *Overlay) PriceAt(day, month, minuteOfDay int) float64 {
	p := o.Base.PricePerKWh(month, minuteOfDay)
	for _, w := range o.Windows {
		if w.active(day, minuteOfDay) {
			return p * w.PriceFactor
		}
	}
	return p
}

// Validate checks every window and rejects same-day overlaps.
func (o *Overlay) Validate(days int) error {
	if o.Base == nil {
		return fmt.Errorf("pricing: overlay has no base tariff")
	}
	for i, w := range o.Windows {
		if err := w.Validate(days); err != nil {
			return err
		}
		for _, prev := range o.Windows[:i] {
			if prev.Day == w.Day && w.StartMin < prev.EndMin && prev.StartMin < w.EndMin {
				return fmt.Errorf("pricing: DR windows overlap on day %d ([%d,%d) and [%d,%d))",
					w.Day, prev.StartMin, prev.EndMin, w.StartMin, w.EndMin)
			}
		}
	}
	return nil
}
