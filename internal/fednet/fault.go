package fednet

import (
	"fmt"
	"time"
)

// FaultPlan scripts deterministic fault injection into a Network, on top of
// the i.i.d. DropProb loss process: link partitions, per-agent straggler
// latency, payload bit-flip corruption, and agent crash/restart windows.
// The zero value injects nothing. Windows are expressed in simulated
// minutes against the network clock (SetNow); a network whose clock is
// never advanced sits at minute 0, so windows starting at 0 are active
// from construction.
//
// All stochastic choices (which payloads corrupt, which bit flips) come
// from a dedicated RNG seeded by Seed, independent of the drop process, so
// enabling corruption does not perturb an existing drop sequence and the
// same seed reproduces byte-identical Stats.
type FaultPlan struct {
	// Seed drives the corruption RNG. Zero derives a seed from the
	// network Config's Seed so distinct fabrics decorrelate by default.
	Seed int64
	// Partitions lists pair links that are severed during a window.
	Partitions []Partition
	// Stragglers lists agents whose uplink is slowed.
	Stragglers []Straggler
	// CorruptProb is the probability a *delivered* payload suffers a
	// single random bit flip in transit. Corruption is applied to a copy;
	// the sender's buffer (shared across broadcast recipients) is never
	// mutated. The wire checksum in fed.MarshalParams catches every
	// single-bit flip, so corrupted sets are rejected, not averaged.
	CorruptProb float64
	// Crashes lists agent down-time windows. A down agent can neither
	// send nor receive, and entering a window wipes its inbox (a crashed
	// process loses queued messages; it restarts with its model intact).
	Crashes []CrashWindow
}

// Partition severs the link between agents A and B — both directions — for
// simulated minutes [StartMin, EndMin). Blocked sends move no bytes (the
// connection fails fast) and are counted in Stats.MessagesBlocked.
type Partition struct {
	A, B             int
	StartMin, EndMin int
}

// active reports whether the window covers minute now.
func (p Partition) active(now int) bool { return now >= p.StartMin && now < p.EndMin }

// Straggler multiplies the transfer time of every message an agent sends
// by Factor (≥ 1), modeling a slow home uplink. Factors ≤ 1 are ignored.
type Straggler struct {
	Agent  int
	Factor float64
}

// CrashWindow takes an agent down for simulated minutes [StartMin, EndMin).
type CrashWindow struct {
	Agent            int
	StartMin, EndMin int
}

// active reports whether the window covers minute now.
func (w CrashWindow) active(now int) bool { return now >= w.StartMin && now < w.EndMin }

// Empty reports whether the plan injects nothing.
func (p FaultPlan) Empty() bool {
	return len(p.Partitions) == 0 && len(p.Stragglers) == 0 &&
		p.CorruptProb == 0 && len(p.Crashes) == 0
}

// Validate checks agent references and probability ranges against a network
// of n agents.
func (p FaultPlan) Validate(n int) error {
	for _, pt := range p.Partitions {
		if pt.A < 0 || pt.A >= n || pt.B < 0 || pt.B >= n {
			return fmt.Errorf("fednet: partition %d–%d outside agent range [0,%d)", pt.A, pt.B, n)
		}
		if pt.A == pt.B {
			return fmt.Errorf("fednet: partition of agent %d with itself", pt.A)
		}
	}
	for _, s := range p.Stragglers {
		if s.Agent < 0 || s.Agent >= n {
			return fmt.Errorf("fednet: straggler agent %d outside range [0,%d)", s.Agent, n)
		}
	}
	for _, c := range p.Crashes {
		if c.Agent < 0 || c.Agent >= n {
			return fmt.Errorf("fednet: crash agent %d outside range [0,%d)", c.Agent, n)
		}
	}
	if p.CorruptProb < 0 || p.CorruptProb > 1 {
		return fmt.Errorf("fednet: CorruptProb %v outside [0,1]", p.CorruptProb)
	}
	return nil
}

// MaxAgent returns the highest agent index the plan references, or -1 for
// a plan touching no specific agent.
func (p FaultPlan) MaxAgent() int {
	max := -1
	up := func(a int) {
		if a > max {
			max = a
		}
	}
	for _, pt := range p.Partitions {
		up(pt.A)
		up(pt.B)
	}
	for _, s := range p.Stragglers {
		up(s.Agent)
	}
	for _, c := range p.Crashes {
		up(c.Agent)
	}
	return max
}

// down reports whether agent is inside a crash window at minute now.
func (p FaultPlan) down(agent, now int) bool {
	for _, c := range p.Crashes {
		if c.Agent == agent && c.active(now) {
			return true
		}
	}
	return false
}

// blocked reports whether a from→to delivery is impossible at minute now:
// either endpoint crashed, or the pair partitioned.
func (p FaultPlan) blocked(from, to, now int) bool {
	if p.down(from, now) || p.down(to, now) {
		return true
	}
	for _, pt := range p.Partitions {
		if pt.active(now) && ((pt.A == from && pt.B == to) || (pt.A == to && pt.B == from)) {
			return true
		}
	}
	return false
}

// factor returns the straggler latency multiplier for an agent's sends
// (1 when the agent is not a straggler).
func (p FaultPlan) factor(agent int) float64 {
	f := 1.0
	for _, s := range p.Stragglers {
		if s.Agent == agent && s.Factor > f {
			f = s.Factor
		}
	}
	return f
}

// PartitionSeconds returns the total severed link time over a run of
// totalMinutes simulated minutes: the sum over partitions of their window
// length clipped to [0, totalMinutes), in seconds. The resilience report
// quotes it so experiments can state how much outage a run absorbed.
func (p FaultPlan) PartitionSeconds(totalMinutes int) float64 {
	total := 0.0
	for _, pt := range p.Partitions {
		start, end := pt.StartMin, pt.EndMin
		if start < 0 {
			start = 0
		}
		if end > totalMinutes {
			end = totalMinutes
		}
		if end > start {
			total += float64(end-start) * 60
		}
	}
	return total
}

// RetryPolicy configures send-side retry on the acked transport used by
// Broadcast (and SendReliable). The zero value means fire-and-forget: one
// attempt, no backoff — exactly the pre-retry fabric behavior.
//
// Every attempt, including retries, is charged to Stats (messages, bytes,
// simulated transfer time) so the communication-overhead figures stay
// honest; retry traffic is additionally broken out in Stats.Retries and
// Stats.RetryBytes. Backoff waits accrue simulated time in
// Stats.BackoffTime (also folded into Stats.SimulatedTime).
type RetryPolicy struct {
	// MaxAttempts is the total delivery attempts per message. Values ≤ 1
	// mean a single attempt (no retry).
	MaxAttempts int
	// Backoff is the simulated wait before the first retry (default 5ms).
	Backoff time.Duration
	// BackoffFactor scales the wait after each failed attempt (default 2).
	BackoffFactor float64
	// RoundBudget caps the total simulated backoff one Broadcast may
	// spend across all its recipients — the per-round timeout budget.
	// 0 means unlimited.
	RoundBudget time.Duration
}

func (r RetryPolicy) withDefaults() RetryPolicy {
	if r.MaxAttempts < 1 {
		r.MaxAttempts = 1
	}
	if r.Backoff <= 0 {
		r.Backoff = 5 * time.Millisecond
	}
	if r.BackoffFactor < 1 {
		r.BackoffFactor = 2
	}
	return r
}
