package fednet

import "fmt"

// NetState is the serializable runtime state of a Network: the simulated
// clock, the topology round epoch, the drop/corruption RNG positions, the
// cumulative counters, and every undelivered inbox message. It is plain
// exported data, so it gob-encodes directly. The immutable parts — agent
// count, Config, cluster layout — are not here: a restore target is
// reconstructed from the same configuration first.
type NetState struct {
	Now       int
	TopoEpoch int
	// DropDraws / CorrDraws are the rng/crng stream positions; restore
	// re-seeds from the configured seeds and fast-forwards.
	DropDraws, CorrDraws uint64
	Stats                Stats
	Inboxes              [][]Message
}

// StateSnapshot captures the network's runtime state. Inbox messages are
// deep-copied (payloads included), so later fabric traffic cannot alias
// into the snapshot.
func (nw *Network) StateSnapshot() NetState {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	st := NetState{
		Now:       nw.now,
		TopoEpoch: nw.topoEpoch,
		DropDraws: nw.dropSrc.Draws(),
		CorrDraws: nw.corrSrc.Draws(),
		Stats:     nw.stats,
		Inboxes:   make([][]Message, len(nw.inboxes)),
	}
	for a, box := range nw.inboxes {
		if len(box) == 0 {
			continue
		}
		cp := make([]Message, len(box))
		for i, m := range box {
			m.Payload = append([]byte(nil), m.Payload...)
			cp[i] = m
		}
		st.Inboxes[a] = cp
	}
	return st
}

// RestoreState installs a StateSnapshot taken from a network with the same
// agent count and configuration. The RNG streams are re-seeded and
// fast-forwarded to their recorded draws, so subsequent drop/corruption
// decisions continue the original sequences bit-for-bit; under the Sampled
// topology the peer sets are re-drawn for the restored epoch.
func (nw *Network) RestoreState(st NetState) error {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	if len(st.Inboxes) != 0 && len(st.Inboxes) != len(nw.inboxes) {
		return fmt.Errorf("fednet: snapshot has %d inboxes, network has %d agents", len(st.Inboxes), len(nw.inboxes))
	}
	if st.TopoEpoch < 0 {
		return fmt.Errorf("fednet: snapshot topology epoch %d < 0", st.TopoEpoch)
	}
	nw.now = st.Now
	nw.topoEpoch = st.TopoEpoch
	nw.stats = st.Stats
	nw.dropSrc.SeekTo(st.DropDraws)
	nw.corrSrc.SeekTo(st.CorrDraws)
	for a := range nw.inboxes {
		nw.inboxes[a] = nil
		if len(st.Inboxes) == 0 || len(st.Inboxes[a]) == 0 {
			continue
		}
		cp := make([]Message, len(st.Inboxes[a]))
		for i, m := range st.Inboxes[a] {
			m.Payload = append([]byte(nil), m.Payload...)
			cp[i] = m
		}
		nw.inboxes[a] = cp
	}
	if nw.cfg.Topology == Sampled {
		nw.resamplePeersLocked()
	}
	return nil
}

// SetSampleK retunes the Sampled topology's per-agent fan-out mid-stream
// (the daemon's live-reconfiguration path) and redraws the current epoch's
// peer sets. It errors for other topologies or an out-of-range k.
func (nw *Network) SetSampleK(k int) error {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	if nw.cfg.Topology != Sampled {
		return fmt.Errorf("fednet: SetSampleK on %s topology", nw.cfg.Topology)
	}
	if n := nw.N(); k < 1 || k > n-1 {
		return fmt.Errorf("fednet: SampleK %d outside [1,%d]", k, nw.N()-1)
	}
	nw.cfg.SampleK = k
	nw.resamplePeersLocked()
	return nil
}
