// Package fednet simulates the communication fabric between smart-home
// agents. The paper's deployment is a LAN inside one residential building:
// every agent broadcasts model parameters directly to every other agent
// (decentralized federated learning, no cloud server). The baselines need a
// star topology instead, where agents talk only to a central aggregator.
//
// The simulator is an in-process mailbox network with
//
//   - per-message byte and count accounting (the communication-overhead
//     experiments, Figs 13–14, are driven by these numbers),
//   - a linear latency model (base + bytes/bandwidth) for simulated time,
//   - deterministic probabilistic message drops for failure injection,
//   - a scripted FaultPlan layering link partitions, straggler latency,
//     payload corruption, and agent crash/restart windows on top of the
//     drop process (see fault.go),
//   - an optional acked transport with retry/backoff (RetryPolicy) whose
//     every attempt — retries included — is charged to the byte counters.
//
// It is safe for concurrent use: agents may train and broadcast from their
// own goroutines.
package fednet

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/rng"
)

// Topology selects who may talk to whom.
type Topology int

const (
	// AllToAll is the paper's decentralized LAN: any agent to any agent.
	AllToAll Topology = iota
	// Star routes everything through node 0 (the cloud aggregator used by
	// the Cloud/FL/FRL baselines): spokes may only exchange with the hub.
	Star
	// Ring permits traffic only between adjacent agents (i ↔ i±1 mod n):
	// the classic low-degree gossip fabric, trading per-round convergence
	// for O(n) instead of O(n²) messages per round.
	Ring
	// Sampled is random-k gossip: each agent may send only to the k peers
	// drawn deterministically for it at the current round epoch (see
	// topology.go), giving n·k messages per round instead of n·(n−1).
	Sampled
	// Cluster is hierarchical aggregation: agents are grouped into
	// clusters, each headed by an aggregator (its first member). Members
	// exchange only with their aggregator; aggregators exchange with each
	// other. One round costs (n−C) + C·(C−1) + C′ messages for C clusters.
	Cluster
)

// String implements fmt.Stringer.
func (t Topology) String() string {
	switch t {
	case Star:
		return "star"
	case Ring:
		return "ring"
	case Sampled:
		return "sampled"
	case Cluster:
		return "cluster"
	default:
		return "all-to-all"
	}
}

// Config parameterizes the simulated fabric.
type Config struct {
	// Topology is AllToAll (default) or Star.
	Topology Topology
	// BaseLatency is the fixed per-message delivery latency.
	// Defaults to 2ms (LAN) for AllToAll and 40ms (WAN hop) for Star,
	// reflecting the paper's claim that cloud round-trips dominate.
	BaseLatency time.Duration
	// BandwidthBps is the per-link bandwidth in bytes per second
	// (default 12.5e6 ≈ 100 Mbit/s).
	BandwidthBps float64
	// DropProb is the probability a message is silently lost.
	DropProb float64
	// Seed drives the drop process deterministically.
	Seed int64
	// Faults scripts partitions, stragglers, corruption, and crashes.
	// The zero value injects nothing.
	Faults FaultPlan
	// Retry configures the acked transport used by Broadcast and
	// SendReliable. The zero value is fire-and-forget (one attempt).
	Retry RetryPolicy

	// SampleK is the per-agent fan-out under the Sampled topology: each
	// agent exchanges with exactly SampleK peers per round epoch. Must be
	// in [1, n−1]; ignored by other topologies.
	SampleK int
	// Clusters is the explicit cluster assignment under the Cluster
	// topology: each inner slice lists one cluster's members, the first of
	// which is its aggregator. Every agent must appear in exactly one
	// cluster. When empty, agents are grouped contiguously into clusters
	// of ClusterSize instead.
	Clusters [][]int
	// ClusterSize groups agents contiguously ([0..s), [s..2s), ...) when
	// Clusters is empty; the last cluster may be smaller. Each cluster's
	// lowest-numbered agent is its aggregator. Ignored by other
	// topologies and when Clusters is set.
	ClusterSize int
}

func (c Config) withDefaults() Config {
	if c.BaseLatency == 0 {
		if c.Topology == Star {
			c.BaseLatency = 40 * time.Millisecond
		} else {
			c.BaseLatency = 2 * time.Millisecond
		}
	}
	if c.BandwidthBps == 0 {
		c.BandwidthBps = 12.5e6
	}
	return c
}

// Message is a delivered payload.
type Message struct {
	From, To int
	// Kind tags the payload ("forecast/tv", "drl-base", ...).
	Kind string
	// Payload is the serialized content. Receivers must treat it as
	// immutable; it is shared across broadcast recipients.
	Payload []byte
}

// Stats aggregates fabric usage. Every delivery attempt that reaches the
// wire — first tries and retries alike — is charged to MessagesSent /
// BytesSent / SimulatedTime, keeping the overhead figures honest; the
// retry share is additionally broken out in Retries / RetryBytes.
type Stats struct {
	MessagesSent    int
	MessagesDropped int
	// MessagesCorrupted counts delivered payloads that suffered a
	// FaultPlan bit flip in transit.
	MessagesCorrupted int
	// MessagesBlocked counts sends suppressed by a partition or crash
	// window. Blocked sends move no bytes: the link fails fast.
	MessagesBlocked int
	// Retries counts attempts after the first on the acked transport;
	// GaveUp counts deliveries abandoned after exhausting the retry
	// policy's attempts or the round's backoff budget.
	Retries int
	GaveUp  int
	// InboxWiped counts messages lost from the inboxes of agents
	// entering a crash window.
	InboxWiped int

	// UniqueMessages counts logical messages that reached the wire at
	// least once — each is charged exactly once, at its first non-blocked
	// attempt, regardless of how many retries it took. MessagesSent −
	// UniqueMessages is therefore the pure retransmit count, and it can
	// differ from Retries: a message whose first attempt was blocked by a
	// partition consumes a retry for its first actual transmission.
	UniqueMessages int

	BytesSent int64
	// RetryBytes is the share of BytesSent spent on retry attempts.
	RetryBytes int64
	// UniqueBytes is the per-message counterpart of the per-attempt
	// BytesSent: each logical message's payload counted once. The gap
	// BytesSent − UniqueBytes is the retransmission overhead the fabric
	// actually paid for drops and corruption re-sends.
	UniqueBytes int64
	// SimulatedTime is the accumulated serialized transfer time of all
	// messages (the denominator experiments divide by agents or rounds),
	// including straggler inflation and retry backoff waits.
	SimulatedTime time.Duration
	// BackoffTime is the share of SimulatedTime spent waiting between
	// retry attempts.
	BackoffTime time.Duration
}

// Network is the simulated fabric.
type Network struct {
	cfg Config

	mu      sync.Mutex
	inboxes [][]Message
	// dropSrc/corrSrc are the counting sources behind rng and crng: the
	// drop and corruption processes draw through them unchanged, and
	// their draw counts are the streams' checkpointable state.
	dropSrc, corrSrc *rng.Source
	rng              *rand.Rand
	// crng drives FaultPlan corruption independently of the drop process.
	crng *rand.Rand
	// now is the simulated clock in minutes; FaultPlan windows are
	// evaluated against it.
	now   int
	stats Stats
	// tel mirrors stats into live telemetry counters; the zero value (all
	// nil handles) is the uninstrumented state.
	tel netTel

	// topoEpoch is the Sampled topology's round counter; peers holds each
	// agent's current-epoch sampled fan-out (see topology.go).
	topoEpoch int
	peers     [][]int
	// clusters / clusterOf are the Cluster topology's normalized member
	// lists (first member = aggregator) and agent → cluster map. Immutable
	// after construction.
	clusters  [][]int
	clusterOf []int
}

// New creates a network of n agents. For Star topology, agent 0 is the hub.
// It panics on an invalid FaultPlan (out-of-range agents) or topology
// configuration, matching the constructor's n < 1 contract. Callers
// handling user-supplied topology configuration should prefer NewChecked.
func New(n int, cfg Config) *Network {
	nw, err := NewChecked(n, cfg)
	if err != nil {
		panic(err.Error())
	}
	return nw
}

// NewChecked is New returning configuration problems as errors instead of
// panicking: topology failures wrap ErrTopology, so user-facing config
// paths can surface them as typed validation errors.
func NewChecked(n int, cfg Config) (*Network, error) {
	if n < 1 {
		return nil, fmt.Errorf("fednet: need at least 1 agent, got %d", n)
	}
	if err := cfg.Faults.Validate(n); err != nil {
		return nil, err
	}
	if err := cfg.ValidateTopology(n); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	fseed := cfg.Faults.Seed
	if fseed == 0 {
		fseed = cfg.Seed + 0x5eed
	}
	dropSrc := rng.NewSource(cfg.Seed)
	corrSrc := rng.NewSource(fseed)
	nw := &Network{
		cfg:     cfg,
		inboxes: make([][]Message, n),
		dropSrc: dropSrc,
		corrSrc: corrSrc,
		rng:     rand.New(dropSrc),
		crng:    rand.New(corrSrc),
	}
	nw.initTopology()
	return nw, nil
}

// N returns the number of agents.
func (nw *Network) N() int { return len(nw.inboxes) }

// Config returns the effective configuration (with defaults applied).
func (nw *Network) Config() Config { return nw.cfg }

// TransferTime returns the simulated wire time for one message of the
// given size.
func (nw *Network) TransferTime(bytes int) time.Duration {
	return nw.cfg.BaseLatency + time.Duration(float64(bytes)/nw.cfg.BandwidthBps*float64(time.Second))
}

// checkSend validates endpoints and topology for a from→to message.
func (nw *Network) checkSend(from, to int) error {
	if err := nw.checkEndpoint(from); err != nil {
		return err
	}
	if err := nw.checkEndpoint(to); err != nil {
		return err
	}
	if from == to {
		return fmt.Errorf("fednet: agent %d sending to itself", from)
	}
	switch nw.cfg.Topology {
	case Star:
		if from != 0 && to != 0 {
			return fmt.Errorf("fednet: star topology forbids %d -> %d (spoke to spoke)", from, to)
		}
	case Ring:
		if !nw.ringAdjacent(from, to) {
			return fmt.Errorf("fednet: ring topology forbids %d -> %d (non-adjacent)", from, to)
		}
	case Sampled:
		nw.mu.Lock()
		ok := nw.sampledPermitted(from, to)
		epoch := nw.topoEpoch
		nw.mu.Unlock()
		if !ok {
			return fmt.Errorf("fednet: sampled topology forbids %d -> %d (not a sampled peer at epoch %d)", from, to, epoch)
		}
	case Cluster:
		if !nw.clusterPermitted(from, to) {
			return fmt.Errorf("fednet: cluster topology forbids %d -> %d (neither member↔aggregator nor aggregator↔aggregator)", from, to)
		}
	}
	return nil
}

// permitted reports whether the topology allows a from→to message; it is
// the Broadcast-side filter matching checkSend's error cases. Caller
// holds nw.mu (the Sampled peer sets are replaced under it).
func (nw *Network) permitted(from, to int) bool {
	if from == to {
		return false
	}
	switch nw.cfg.Topology {
	case Star:
		return from == 0 || to == 0
	case Ring:
		return nw.ringAdjacent(from, to)
	case Sampled:
		return nw.sampledPermitted(from, to)
	case Cluster:
		return nw.clusterPermitted(from, to)
	}
	return true
}

// transferFor is TransferTime inflated by the sender's straggler factor.
func (nw *Network) transferFor(from, bytes int) time.Duration {
	t := nw.TransferTime(bytes)
	if f := nw.cfg.Faults.factor(from); f > 1 {
		t = time.Duration(float64(t) * f)
	}
	return t
}

// attemptOutcome classifies one delivery attempt.
type attemptOutcome int

const (
	attemptDelivered attemptOutcome = iota
	attemptDropped
	attemptBlocked
)

// attempt performs one delivery attempt. retry marks attempts after the
// first, whose traffic is broken out separately. Caller holds nw.mu.
func (nw *Network) attempt(from, to int, kind string, payload []byte, retry bool) attemptOutcome {
	if nw.cfg.Faults.blocked(from, to, nw.now) {
		nw.stats.MessagesBlocked++
		nw.tel.blocked.Inc()
		return attemptBlocked
	}
	nw.stats.MessagesSent++
	nw.stats.BytesSent += int64(len(payload))
	nw.stats.SimulatedTime += nw.transferFor(from, len(payload))
	nw.tel.attempts.Inc()
	nw.tel.bytes.Add(int64(len(payload)))
	if retry {
		nw.stats.Retries++
		nw.stats.RetryBytes += int64(len(payload))
		nw.tel.retries.Inc()
	}
	if nw.cfg.DropProb > 0 && nw.rng.Float64() < nw.cfg.DropProb {
		nw.stats.MessagesDropped++
		nw.tel.dropped.Inc()
		return attemptDropped
	}
	if p := nw.cfg.Faults.CorruptProb; p > 0 && len(payload) > 0 && nw.crng.Float64() < p {
		corrupted := append([]byte(nil), payload...)
		bit := nw.crng.Intn(len(corrupted) * 8)
		corrupted[bit/8] ^= 1 << (bit % 8)
		payload = corrupted
		nw.stats.MessagesCorrupted++
		nw.tel.corrupted.Inc()
	}
	nw.inboxes[to] = append(nw.inboxes[to], Message{From: from, To: to, Kind: kind, Payload: payload})
	return attemptDelivered
}

// chargeUnique records one logical message's single per-message charge.
// Caller holds nw.mu.
func (nw *Network) chargeUnique(payload []byte) {
	nw.stats.UniqueMessages++
	nw.stats.UniqueBytes += int64(len(payload))
	nw.tel.unique.Inc()
}

// sendReliable drives the acked transport for one message: attempts with
// exponential backoff until delivery, attempt exhaustion, or (when budget
// is non-nil) backoff-budget exhaustion. Reports whether the message was
// delivered. Caller holds nw.mu.
func (nw *Network) sendReliable(from, to int, kind string, payload []byte, budget *time.Duration) bool {
	r := nw.cfg.Retry.withDefaults()
	backoff := r.Backoff
	wired := false
	for att := 0; att < r.MaxAttempts; att++ {
		out := nw.attempt(from, to, kind, payload, att > 0)
		if out != attemptBlocked && !wired {
			wired = true
			nw.chargeUnique(payload)
		}
		if out == attemptDelivered {
			return true
		}
		if att+1 >= r.MaxAttempts {
			break
		}
		if budget != nil && *budget < backoff {
			break // round's retry budget exhausted
		}
		if budget != nil {
			*budget -= backoff
		}
		nw.stats.BackoffTime += backoff
		nw.stats.SimulatedTime += backoff
		backoff = time.Duration(float64(backoff) * r.BackoffFactor)
	}
	if r.MaxAttempts > 1 {
		// Fire-and-forget sends cannot tell they failed; only the acked
		// transport knows it gave up.
		nw.stats.GaveUp++
		nw.tel.gaveUp.Inc()
	}
	return false
}

// Send delivers one message fire-and-forget, subject to topology rules,
// drops, and the fault plan. It returns an error for invalid endpoints or
// a topology violation; a dropped or blocked message is not an error (the
// sender cannot tell). Retries never apply to Send — use SendReliable or
// Broadcast for the acked transport.
func (nw *Network) Send(from, to int, kind string, payload []byte) error {
	if err := nw.checkSend(from, to); err != nil {
		return err
	}
	nw.mu.Lock()
	defer nw.mu.Unlock()
	if nw.attempt(from, to, kind, payload, false) != attemptBlocked {
		nw.chargeUnique(payload)
	}
	return nil
}

// SendReliable delivers one message over the acked transport: failed
// attempts (drops, partition- or crash-blocked links) are retried with the
// configured backoff, every attempt charged to the byte counters. It
// reports whether the message was delivered — a false return after a
// multi-attempt policy is also counted in Stats.GaveUp.
func (nw *Network) SendReliable(from, to int, kind string, payload []byte) (bool, error) {
	if err := nw.checkSend(from, to); err != nil {
		return false, err
	}
	nw.mu.Lock()
	defer nw.mu.Unlock()
	return nw.sendReliable(from, to, kind, payload, nil), nil
}

// Broadcast sends payload from an agent to every permitted peer: all other
// agents under AllToAll, only the hub for a spoke (or every spoke for the
// hub) under Star, the two ring neighbors under Ring. The payload is
// shared, not copied, across recipients.
//
// With a multi-attempt RetryPolicy, each delivery runs on the acked
// transport, and all deliveries share the policy's RoundBudget of backoff
// time — once the budget is spent, remaining failures are abandoned
// (Stats.GaveUp) so a partition cannot stall a round indefinitely.
func (nw *Network) Broadcast(from int, kind string, payload []byte) error {
	if err := nw.checkEndpoint(from); err != nil {
		return err
	}
	r := nw.cfg.Retry.withDefaults()
	var budget *time.Duration
	if r.RoundBudget > 0 {
		b := r.RoundBudget
		budget = &b
	}
	nw.mu.Lock()
	defer nw.mu.Unlock()
	if nw.cfg.Topology == Sampled {
		// Walk the k-element peer set directly instead of scanning all n
		// agents — keeps a sampled broadcast O(k), not O(n), per sender.
		for _, to := range nw.peers[from] {
			nw.sendReliable(from, to, kind, payload, budget)
		}
		return nil
	}
	for to := 0; to < nw.N(); to++ {
		if !nw.permitted(from, to) {
			continue
		}
		nw.sendReliable(from, to, kind, payload, budget)
	}
	return nil
}

// SetNow advances the simulated clock (in minutes) that FaultPlan windows
// are evaluated against. Agents inside a crash window at the new time lose
// their queued inbox messages — a crashed process restarts with its model
// but not its mailbox.
func (nw *Network) SetNow(minute int) {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	nw.now = minute
	for a := range nw.inboxes {
		if nw.cfg.Faults.down(a, minute) && len(nw.inboxes[a]) > 0 {
			nw.stats.InboxWiped += len(nw.inboxes[a])
			nw.inboxes[a] = nil
		}
	}
}

// Now returns the simulated clock in minutes.
func (nw *Network) Now() int {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	return nw.now
}

// AgentDown reports whether an agent is inside a crash window right now.
// Federation rounds use it to skip crashed agents entirely.
func (nw *Network) AgentDown(agent int) bool {
	if err := nw.checkEndpoint(agent); err != nil {
		panic(err)
	}
	nw.mu.Lock()
	defer nw.mu.Unlock()
	return nw.cfg.Faults.down(agent, nw.now)
}

// ringAdjacent reports whether a and b are neighbors on the ring.
func (nw *Network) ringAdjacent(a, b int) bool {
	n := nw.N()
	if n <= 2 {
		return a != b
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	return d == 1 || d == n-1
}

// Collect drains and returns an agent's inbox in arrival order.
func (nw *Network) Collect(agent int) []Message {
	if err := nw.checkEndpoint(agent); err != nil {
		panic(err)
	}
	nw.mu.Lock()
	defer nw.mu.Unlock()
	msgs := nw.inboxes[agent]
	nw.inboxes[agent] = nil
	return msgs
}

// Pending returns the number of undelivered messages in an agent's inbox
// without draining it.
func (nw *Network) Pending(agent int) int {
	if err := nw.checkEndpoint(agent); err != nil {
		panic(err)
	}
	nw.mu.Lock()
	defer nw.mu.Unlock()
	return len(nw.inboxes[agent])
}

// Stats returns a snapshot of the fabric counters.
func (nw *Network) Stats() Stats {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	return nw.stats
}

// ResetStats zeroes the counters (inboxes are untouched).
func (nw *Network) ResetStats() {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	nw.stats = Stats{}
}

func (nw *Network) checkEndpoint(a int) error {
	if a < 0 || a >= nw.N() {
		return fmt.Errorf("fednet: agent %d out of range [0,%d)", a, nw.N())
	}
	return nil
}

// ChargeBroadcastRounds accounts the traffic of `rounds` full parameter-
// exchange rounds of the given payload size without delivering anything.
// The simulation uses it when a broadcast period shorter than the training
// granularity fires several times between training bouts: re-running the
// exchange would be an idempotent no-op (averaging identical parameters),
// but the fabric cost is real and must appear in the overhead figures.
//
// One round counts RoundMessages() messages: n·(n−1) under AllToAll,
// 2·(n−1) under Star (upload plus redistribution), n·k under Sampled,
// (n−C) + C·(C−1) + C′ under Cluster.
func (nw *Network) ChargeBroadcastRounds(bytes, rounds int) {
	if rounds <= 0 || nw.N() <= 1 {
		return
	}
	msgs := nw.RoundMessages()
	nw.mu.Lock()
	defer nw.mu.Unlock()
	nw.stats.MessagesSent += rounds * msgs
	nw.stats.BytesSent += int64(rounds * msgs * bytes)
	nw.stats.UniqueMessages += rounds * msgs
	nw.stats.UniqueBytes += int64(rounds * msgs * bytes)
	nw.stats.SimulatedTime += time.Duration(rounds*msgs) * nw.TransferTime(bytes)
	nw.tel.attempts.Add(int64(rounds * msgs))
	nw.tel.unique.Add(int64(rounds * msgs))
	nw.tel.bytes.Add(int64(rounds * msgs * bytes))
}

// BroadcastRoundTime estimates the simulated wall-clock of one synchronous
// parameter-exchange round in which every participant ships `bytes` to each
// of its peers. Per-agent links are serial; distinct agents transmit in
// parallel (each home has its own uplink).
//
//   - AllToAll with n agents: each sends n−1 messages serially ⇒
//     (n−1)·transfer(bytes).
//   - Star with n agents (hub + n−1 spokes): spokes upload in parallel
//     (one transfer), then the hub re-distributes serially to n−1 spokes.
//   - Sampled: each sends to its k peers serially ⇒ k·transfer(bytes).
//   - Cluster with C clusters of ≤ m members: parallel uploads (one
//     transfer), each aggregator sends C−1 summaries serially, one
//     multicast download ⇒ (C+1)·transfer(bytes).
func (nw *Network) BroadcastRoundTime(bytes int) time.Duration {
	n := nw.N()
	if n <= 1 {
		return 0
	}
	t := nw.TransferTime(bytes)
	switch nw.cfg.Topology {
	case Star:
		return t + time.Duration(n-1)*t
	case Sampled:
		return time.Duration(nw.cfg.SampleK) * t
	case Cluster:
		return time.Duration(len(nw.clusters)+1) * t
	}
	return time.Duration(n-1) * t
}
