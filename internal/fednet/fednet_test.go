package fednet

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestNewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(0, Config{})
}

func TestSendAndCollect(t *testing.T) {
	nw := New(3, Config{})
	if err := nw.Send(0, 1, "k", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if got := nw.Pending(1); got != 1 {
		t.Fatalf("Pending = %d", got)
	}
	msgs := nw.Collect(1)
	if len(msgs) != 1 || msgs[0].From != 0 || msgs[0].Kind != "k" || string(msgs[0].Payload) != "hello" {
		t.Fatalf("Collect = %+v", msgs)
	}
	if len(nw.Collect(1)) != 0 {
		t.Fatal("Collect did not drain")
	}
}

func TestSendErrors(t *testing.T) {
	nw := New(2, Config{})
	if err := nw.Send(0, 0, "k", nil); err == nil {
		t.Fatal("self-send accepted")
	}
	if err := nw.Send(-1, 0, "k", nil); err == nil {
		t.Fatal("bad sender accepted")
	}
	if err := nw.Send(0, 5, "k", nil); err == nil {
		t.Fatal("bad receiver accepted")
	}
}

func TestStarTopologyRules(t *testing.T) {
	nw := New(3, Config{Topology: Star})
	if err := nw.Send(1, 2, "k", nil); err == nil {
		t.Fatal("spoke-to-spoke accepted under star")
	}
	if err := nw.Send(1, 0, "k", nil); err != nil {
		t.Fatalf("spoke-to-hub rejected: %v", err)
	}
	if err := nw.Send(0, 2, "k", nil); err != nil {
		t.Fatalf("hub-to-spoke rejected: %v", err)
	}
}

func TestBroadcastAllToAll(t *testing.T) {
	nw := New(4, Config{})
	if err := nw.Broadcast(2, "params", []byte("x")); err != nil {
		t.Fatal(err)
	}
	for a := 0; a < 4; a++ {
		want := 1
		if a == 2 {
			want = 0
		}
		if got := nw.Pending(a); got != want {
			t.Fatalf("agent %d pending %d, want %d", a, got, want)
		}
	}
	st := nw.Stats()
	if st.MessagesSent != 3 || st.BytesSent != 3 {
		t.Fatalf("stats %+v", st)
	}
}

func TestBroadcastStar(t *testing.T) {
	nw := New(4, Config{Topology: Star})
	// Spoke broadcast reaches only the hub.
	if err := nw.Broadcast(1, "up", nil); err != nil {
		t.Fatal(err)
	}
	if nw.Pending(0) != 1 || nw.Pending(2) != 0 || nw.Pending(3) != 0 {
		t.Fatal("spoke broadcast leaked past hub")
	}
	// Hub broadcast reaches all spokes.
	if err := nw.Broadcast(0, "down", nil); err != nil {
		t.Fatal(err)
	}
	if nw.Pending(1) != 1 || nw.Pending(2) != 1 || nw.Pending(3) != 1 {
		t.Fatal("hub broadcast incomplete")
	}
}

func TestTransferTimeLinear(t *testing.T) {
	nw := New(2, Config{BaseLatency: time.Millisecond, BandwidthBps: 1000})
	if got := nw.TransferTime(0); got != time.Millisecond {
		t.Fatalf("zero-byte transfer %v", got)
	}
	if got := nw.TransferTime(1000); got != time.Millisecond+time.Second {
		t.Fatalf("1000-byte transfer %v", got)
	}
}

func TestDefaultsByTopology(t *testing.T) {
	lan := New(2, Config{})
	wan := New(2, Config{Topology: Star})
	if lan.Config().BaseLatency >= wan.Config().BaseLatency {
		t.Fatal("LAN default latency should undercut star/cloud latency")
	}
	if lan.Config().BandwidthBps <= 0 {
		t.Fatal("bandwidth default missing")
	}
}

func TestDropInjectionDeterministic(t *testing.T) {
	mk := func() Stats {
		nw := New(2, Config{DropProb: 0.5, Seed: 7})
		for i := 0; i < 200; i++ {
			if err := nw.Send(0, 1, "k", []byte("p")); err != nil {
				t.Fatal(err)
			}
		}
		return nw.Stats()
	}
	a, b := mk(), mk()
	if a != b {
		t.Fatalf("drop process not deterministic: %+v vs %+v", a, b)
	}
	if a.MessagesDropped < 60 || a.MessagesDropped > 140 {
		t.Fatalf("drop count %d far from 50%% of 200", a.MessagesDropped)
	}
	// Dropped messages still count as sent bytes (the sender paid for them).
	if a.BytesSent != 200 {
		t.Fatalf("bytes sent %d, want 200", a.BytesSent)
	}
}

func TestStatsAndReset(t *testing.T) {
	nw := New(2, Config{})
	_ = nw.Send(0, 1, "k", make([]byte, 100))
	st := nw.Stats()
	if st.BytesSent != 100 || st.SimulatedTime <= 0 {
		t.Fatalf("stats %+v", st)
	}
	nw.ResetStats()
	if nw.Stats() != (Stats{}) {
		t.Fatal("ResetStats did not zero")
	}
	// Inbox survives reset.
	if nw.Pending(1) != 1 {
		t.Fatal("ResetStats touched inboxes")
	}
}

func TestBroadcastRoundTime(t *testing.T) {
	lan := New(5, Config{BaseLatency: time.Millisecond, BandwidthBps: 1e6})
	star := New(5, Config{Topology: Star, BaseLatency: time.Millisecond, BandwidthBps: 1e6})
	b := 1000
	per := time.Millisecond + time.Millisecond // 1000B at 1MB/s = 1ms
	if got := lan.BroadcastRoundTime(b); got != 4*per {
		t.Fatalf("lan round %v, want %v", got, 4*per)
	}
	if got := star.BroadcastRoundTime(b); got != 5*per {
		t.Fatalf("star round %v, want %v", got, 5*per)
	}
	single := New(1, Config{})
	if single.BroadcastRoundTime(b) != 0 {
		t.Fatal("1-agent round time should be 0")
	}
}

func TestConcurrentSendersSafe(t *testing.T) {
	nw := New(8, Config{})
	var wg sync.WaitGroup
	for from := 0; from < 8; from++ {
		wg.Add(1)
		go func(from int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if err := nw.Broadcast(from, fmt.Sprintf("m%d", i), []byte{byte(i)}); err != nil {
					t.Error(err)
					return
				}
			}
		}(from)
	}
	wg.Wait()
	st := nw.Stats()
	want := 8 * 50 * 7
	if st.MessagesSent != want {
		t.Fatalf("sent %d, want %d", st.MessagesSent, want)
	}
	total := 0
	for a := 0; a < 8; a++ {
		total += nw.Pending(a)
	}
	if total != want {
		t.Fatalf("delivered %d, want %d", total, want)
	}
}

func TestTopologyString(t *testing.T) {
	if AllToAll.String() != "all-to-all" || Star.String() != "star" {
		t.Fatal("Topology String wrong")
	}
}

func TestRingAdjacencyAndString(t *testing.T) {
	if Ring.String() != "ring" {
		t.Fatal("Ring String wrong")
	}
	nw := New(5, Config{Topology: Ring})
	if err := nw.Send(1, 3, "k", nil); err == nil {
		t.Fatal("non-adjacent ring send accepted")
	}
	for _, pair := range [][2]int{{1, 2}, {2, 1}, {4, 0}, {0, 4}} {
		if err := nw.Send(pair[0], pair[1], "k", nil); err != nil {
			t.Fatalf("adjacent ring send %v rejected: %v", pair, err)
		}
	}
	// Ring broadcast hits exactly the two neighbors.
	nw2 := New(5, Config{Topology: Ring})
	if err := nw2.Broadcast(0, "k", nil); err != nil {
		t.Fatal(err)
	}
	if nw2.Pending(1) != 1 || nw2.Pending(4) != 1 || nw2.Pending(2) != 0 {
		t.Fatal("ring broadcast fan-out wrong")
	}
	// Two-node ring: everyone is adjacent.
	two := New(2, Config{Topology: Ring})
	if err := two.Send(0, 1, "k", nil); err != nil {
		t.Fatal(err)
	}
}

func TestChargeBroadcastRounds(t *testing.T) {
	check := func(topo Topology, n, wantMsgs int) {
		nw := New(n, Config{Topology: topo})
		nw.ChargeBroadcastRounds(100, 3)
		st := nw.Stats()
		if st.MessagesSent != 3*wantMsgs {
			t.Fatalf("%v: messages %d, want %d", topo, st.MessagesSent, 3*wantMsgs)
		}
		if st.BytesSent != int64(3*wantMsgs*100) {
			t.Fatalf("%v: bytes %d", topo, st.BytesSent)
		}
		if st.SimulatedTime <= 0 {
			t.Fatalf("%v: no simulated time charged", topo)
		}
		// Nothing delivered.
		for a := 0; a < n; a++ {
			if nw.Pending(a) != 0 {
				t.Fatalf("%v: ChargeBroadcastRounds delivered messages", topo)
			}
		}
	}
	check(AllToAll, 4, 4*3)
	check(Star, 4, 2*3)
	check(Ring, 4, 2*4)
	// No-ops.
	one := New(1, Config{})
	one.ChargeBroadcastRounds(100, 5)
	if one.Stats().MessagesSent != 0 {
		t.Fatal("single-agent charge should be a no-op")
	}
	nw := New(3, Config{})
	nw.ChargeBroadcastRounds(100, 0)
	if nw.Stats().MessagesSent != 0 {
		t.Fatal("zero rounds should be a no-op")
	}
}

func TestCollectPendingPanicOnBadAgent(t *testing.T) {
	nw := New(2, Config{})
	for _, f := range []func(){
		func() { nw.Collect(9) },
		func() { nw.Pending(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

// TestUniqueVsAttemptAccounting pins the per-message / per-attempt split:
// BytesSent charges every attempt that reaches the wire, UniqueBytes each
// logical message exactly once, and their gap is the retransmission
// overhead.
func TestUniqueVsAttemptAccounting(t *testing.T) {
	// Clean fabric: the two views agree.
	nw := New(3, Config{})
	if err := nw.Broadcast(0, "k", make([]byte, 10)); err != nil {
		t.Fatal(err)
	}
	st := nw.Stats()
	if st.UniqueMessages != 2 || st.UniqueBytes != 20 ||
		st.UniqueMessages != st.MessagesSent || st.UniqueBytes != st.BytesSent {
		t.Fatalf("clean fabric split disagrees: %+v", st)
	}

	// Drop + retry: the retransmit is charged per-attempt but not
	// per-message. Scan for a seed whose first draw drops.
	seed := int64(-1)
	for s := int64(0); s < 64; s++ {
		probe := New(2, Config{DropProb: 0.5, Seed: s,
			Retry: RetryPolicy{MaxAttempts: 2, Backoff: time.Millisecond}})
		_ = probe.Send(0, 1, "k", []byte("x"))
		if probe.Stats().MessagesDropped != 1 {
			continue
		}
		probe = New(2, Config{DropProb: 0.5, Seed: s,
			Retry: RetryPolicy{MaxAttempts: 2, Backoff: time.Millisecond}})
		if ok, _ := probe.SendReliable(0, 1, "k", []byte("x")); ok {
			seed = s
			break
		}
	}
	if seed < 0 {
		t.Fatal("no drop-then-deliver seed in scan range")
	}
	nw = New(2, Config{DropProb: 0.5, Seed: seed,
		Retry: RetryPolicy{MaxAttempts: 2, Backoff: time.Millisecond}})
	ok, err := nw.SendReliable(0, 1, "k", []byte("xyz"))
	if err != nil || !ok {
		t.Fatalf("delivery failed: ok=%v err=%v", ok, err)
	}
	st = nw.Stats()
	if st.UniqueMessages != 1 || st.UniqueBytes != 3 {
		t.Fatalf("retried message charged per-message more than once: %+v", st)
	}
	if st.MessagesSent != 2 || st.BytesSent != 6 {
		t.Fatalf("attempt counters missed the retransmit: %+v", st)
	}
	if gap := st.BytesSent - st.UniqueBytes; gap != 3 || gap != st.RetryBytes {
		t.Fatalf("retransmit gap %d, want 3 (= RetryBytes %d)", gap, st.RetryBytes)
	}

	// Fully blocked link: nothing reaches the wire, so neither view (nor
	// the unique counters) charges anything.
	nw = New(2, Config{
		Faults: FaultPlan{Partitions: []Partition{{A: 0, B: 1, StartMin: 0, EndMin: 10}}},
		Retry:  RetryPolicy{MaxAttempts: 2, Backoff: time.Millisecond},
	})
	if _, err := nw.SendReliable(0, 1, "k", []byte("xyz")); err != nil {
		t.Fatal(err)
	}
	st = nw.Stats()
	if st.UniqueMessages != 0 || st.UniqueBytes != 0 || st.BytesSent != 0 || st.MessagesBlocked != 2 {
		t.Fatalf("blocked link leaked charges: %+v", st)
	}

	// Synthetic re-fire charges count once per synthetic message.
	nw = New(3, Config{})
	nw.ChargeBroadcastRounds(50, 2)
	st = nw.Stats()
	if st.UniqueMessages != st.MessagesSent || st.UniqueBytes != st.BytesSent || st.UniqueMessages != 12 {
		t.Fatalf("synthetic charge split disagrees: %+v", st)
	}
}
