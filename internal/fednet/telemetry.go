package fednet

import (
	"fmt"

	"repro/internal/telemetry"
)

// netTel holds the fabric's instrument handles. The zero value (all nil)
// is the uninstrumented state: every handle method no-ops on nil, so
// attempt/sendReliable call them unconditionally.
type netTel struct {
	attempts  *telemetry.Counter
	unique    *telemetry.Counter
	retries   *telemetry.Counter
	dropped   *telemetry.Counter
	blocked   *telemetry.Counter
	corrupted *telemetry.Counter
	gaveUp    *telemetry.Counter
	bytes     *telemetry.Counter
}

// Instrument binds the network to a telemetry sink under a plane label
// ("forecast", "ems", ...). Counters mirror the Stats fields live so a
// scrape mid-round sees current traffic without waiting for a Stats
// snapshot. A nil sink detaches.
func (nw *Network) Instrument(sink *telemetry.Sink, plane string) {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	if sink == nil {
		nw.tel = netTel{}
		return
	}
	name := func(base string) string {
		return fmt.Sprintf(`%s{plane=%q}`, base, plane)
	}
	nw.tel = netTel{
		attempts:  sink.Counter(name("pfdrl_fednet_attempts_total"), "delivery attempts that reached the wire, retries included"),
		unique:    sink.Counter(name("pfdrl_fednet_messages_total"), "logical messages that reached the wire at least once"),
		retries:   sink.Counter(name("pfdrl_fednet_retries_total"), "delivery attempts after the first on the acked transport"),
		dropped:   sink.Counter(name("pfdrl_fednet_dropped_total"), "attempts lost to the drop process"),
		blocked:   sink.Counter(name("pfdrl_fednet_blocked_total"), "sends suppressed by a partition or crash window"),
		corrupted: sink.Counter(name("pfdrl_fednet_corrupted_total"), "delivered payloads that suffered a fault-plan bit flip"),
		gaveUp:    sink.Counter(name("pfdrl_fednet_gaveup_total"), "deliveries abandoned after exhausting retries or backoff budget"),
		bytes:     sink.Counter(name("pfdrl_fednet_bytes_sent_total"), "payload bytes charged to the wire, retries included"),
	}
}
