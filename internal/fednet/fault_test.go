package fednet

import (
	"bytes"
	"testing"
	"time"
)

// TestFaultScenarios is the table-driven scenario suite for the fault
// layer: each case scripts clock movement and sends against a faulted
// network and asserts the exact resulting Stats — byte-exact accounting
// under fixed seeds is the contract the communication figures rest on.
func TestFaultScenarios(t *testing.T) {
	payload := []byte("0123456789") // 10 bytes
	cases := []struct {
		name   string
		cfg    Config
		script func(t *testing.T, nw *Network)
		want   Stats
	}{
		{
			name: "partition window blocks only inside the window",
			cfg: Config{BaseLatency: time.Millisecond, BandwidthBps: 1e6,
				Faults: FaultPlan{Partitions: []Partition{{A: 0, B: 1, StartMin: 10, EndMin: 20}}}},
			script: func(t *testing.T, nw *Network) {
				nw.SetNow(5)
				mustSend(t, nw, 0, 1, payload) // before window: delivered
				nw.SetNow(10)
				mustSend(t, nw, 0, 1, payload) // inside: blocked
				mustSend(t, nw, 1, 0, payload) // both directions blocked
				mustSend(t, nw, 0, 2, payload) // other links unaffected
				nw.SetNow(20)
				mustSend(t, nw, 0, 1, payload) // window closed: delivered
				if got := nw.Pending(1); got != 2 {
					t.Fatalf("agent 1 got %d messages, want 2", got)
				}
			},
			want: Stats{MessagesSent: 3, MessagesBlocked: 2, UniqueMessages: 3,
				BytesSent: 30, UniqueBytes: 30,
				SimulatedTime: 3 * (time.Millisecond + 10*time.Microsecond)},
		},
		{
			name: "straggler inflates only its own uplink time",
			cfg: Config{BaseLatency: time.Millisecond, BandwidthBps: 1e6,
				Faults: FaultPlan{Stragglers: []Straggler{{Agent: 0, Factor: 3}}}},
			script: func(t *testing.T, nw *Network) {
				mustSend(t, nw, 0, 1, payload) // 3× transfer time
				mustSend(t, nw, 1, 0, payload) // 1× transfer time
			},
			want: Stats{MessagesSent: 2, UniqueMessages: 2, BytesSent: 20, UniqueBytes: 20,
				SimulatedTime: 4 * (time.Millisecond + 10*time.Microsecond)},
		},
		{
			name: "crash window blocks both directions and wipes the inbox",
			cfg: Config{BaseLatency: time.Millisecond, BandwidthBps: 1e6,
				Faults: FaultPlan{Crashes: []CrashWindow{{Agent: 1, StartMin: 60, EndMin: 120}}}},
			script: func(t *testing.T, nw *Network) {
				mustSend(t, nw, 0, 1, payload) // up: delivered, queued
				nw.SetNow(60)                  // crash: queued message lost
				if got := nw.Pending(1); got != 0 {
					t.Fatalf("crash left %d messages in inbox", got)
				}
				if !nw.AgentDown(1) {
					t.Fatal("agent 1 should be down")
				}
				mustSend(t, nw, 0, 1, payload) // to down agent: blocked
				mustSend(t, nw, 1, 2, payload) // from down agent: blocked
				nw.SetNow(120)                 // restart
				if nw.AgentDown(1) {
					t.Fatal("agent 1 should be back up")
				}
				mustSend(t, nw, 0, 1, payload)
				if got := nw.Pending(1); got != 1 {
					t.Fatalf("after restart agent 1 has %d messages, want 1", got)
				}
			},
			want: Stats{MessagesSent: 2, MessagesBlocked: 2, InboxWiped: 1,
				UniqueMessages: 2, BytesSent: 20, UniqueBytes: 20,
				SimulatedTime: 2 * (time.Millisecond + 10*time.Microsecond)},
		},
		{
			name: "corruption flips one bit in a copy and is counted",
			cfg: Config{BaseLatency: time.Millisecond, BandwidthBps: 1e6,
				Faults: FaultPlan{CorruptProb: 1, Seed: 11}},
			script: func(t *testing.T, nw *Network) {
				orig := append([]byte(nil), payload...)
				mustSend(t, nw, 0, 1, orig)
				if !bytes.Equal(orig, payload) {
					t.Fatal("corruption mutated the sender's buffer")
				}
				got := nw.Collect(1)[0].Payload
				if diff := bitDiff(orig, got); diff != 1 {
					t.Fatalf("payload differs by %d bits, want exactly 1", diff)
				}
			},
			want: Stats{MessagesSent: 1, MessagesCorrupted: 1, UniqueMessages: 1,
				BytesSent: 10, UniqueBytes: 10,
				SimulatedTime: time.Millisecond + 10*time.Microsecond},
		},
		{
			name: "give-up after exhausting retries, every attempt billed",
			cfg: Config{BaseLatency: time.Millisecond, BandwidthBps: 1e6,
				DropProb: 1, Seed: 1,
				Retry: RetryPolicy{MaxAttempts: 3, Backoff: 5 * time.Millisecond}},
			script: func(t *testing.T, nw *Network) {
				ok, err := nw.SendReliable(0, 1, "k", payload)
				if err != nil {
					t.Fatal(err)
				}
				if ok {
					t.Fatal("DropProb=1 delivery claimed success")
				}
			},
			want: Stats{MessagesSent: 3, MessagesDropped: 3, Retries: 2, GaveUp: 1,
				UniqueMessages: 1, BytesSent: 30, RetryBytes: 20, UniqueBytes: 10,
				BackoffTime:   15 * time.Millisecond,
				SimulatedTime: 3*(time.Millisecond+10*time.Microsecond) + 15*time.Millisecond},
		},
		{
			name: "round budget shared across broadcast recipients",
			cfg: Config{BaseLatency: time.Millisecond, BandwidthBps: 1e6,
				DropProb: 1, Seed: 1,
				Retry: RetryPolicy{MaxAttempts: 5, Backoff: 5 * time.Millisecond, RoundBudget: 5 * time.Millisecond}},
			script: func(t *testing.T, nw *Network) {
				// The 5ms budget buys recipient 1 a single 5ms backoff
				// (2 attempts); recipient 2 finds it spent and gets 1.
				if err := nw.Broadcast(0, "k", payload); err != nil {
					t.Fatal(err)
				}
			},
			want: Stats{MessagesSent: 3, MessagesDropped: 3, Retries: 1, GaveUp: 2,
				UniqueMessages: 2, BytesSent: 30, RetryBytes: 10, UniqueBytes: 20,
				BackoffTime:   5 * time.Millisecond,
				SimulatedTime: 3*(time.Millisecond+10*time.Microsecond) + 5*time.Millisecond},
		},
		{
			name: "partitioned link burns backoff but no bytes",
			cfg: Config{BaseLatency: time.Millisecond, BandwidthBps: 1e6,
				Retry:  RetryPolicy{MaxAttempts: 3, Backoff: 5 * time.Millisecond},
				Faults: FaultPlan{Partitions: []Partition{{A: 0, B: 1, StartMin: 0, EndMin: 100}}}},
			script: func(t *testing.T, nw *Network) {
				ok, err := nw.SendReliable(0, 1, "k", payload)
				if err != nil {
					t.Fatal(err)
				}
				if ok {
					t.Fatal("partitioned delivery claimed success")
				}
			},
			want: Stats{MessagesBlocked: 3, GaveUp: 1,
				BackoffTime: 15 * time.Millisecond, SimulatedTime: 15 * time.Millisecond},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			nw := New(3, tc.cfg)
			tc.script(t, nw)
			if got := nw.Stats(); got != tc.want {
				t.Fatalf("stats\n got %+v\nwant %+v", got, tc.want)
			}
		})
	}
}

func mustSend(t *testing.T, nw *Network, from, to int, payload []byte) {
	t.Helper()
	if err := nw.Send(from, to, "k", payload); err != nil {
		t.Fatal(err)
	}
}

// bitDiff counts differing bits between equal-length byte slices.
func bitDiff(a, b []byte) int {
	if len(a) != len(b) {
		return -1
	}
	n := 0
	for i := range a {
		for x := a[i] ^ b[i]; x != 0; x &= x - 1 {
			n++
		}
	}
	return n
}

// TestRetryDeliversAfterDrop picks a seed whose first draw drops and
// second delivers, asserting the retry path's exact accounting.
func TestRetryDeliversAfterDrop(t *testing.T) {
	// Find a seed deterministically: first Float64 < 0.5, second ≥ 0.5 is
	// not required — we scan a fixed small range once and then hard-assert
	// the behavior so the test stays reproducible.
	seed := int64(-1)
	for s := int64(0); s < 64; s++ {
		nw := New(2, Config{DropProb: 0.5, Seed: s})
		_ = nw.Send(0, 1, "k", []byte("x"))
		st := nw.Stats()
		if st.MessagesDropped == 1 {
			// First draw drops under this seed; check the second delivers.
			nw2 := New(2, Config{DropProb: 0.5, Seed: s,
				Retry: RetryPolicy{MaxAttempts: 2, Backoff: time.Millisecond}})
			ok, err := nw2.SendReliable(0, 1, "k", []byte("x"))
			if err != nil {
				t.Fatal(err)
			}
			if ok {
				seed = s
				break
			}
		}
	}
	if seed < 0 {
		t.Fatal("no drop-then-deliver seed in scan range")
	}
	nw := New(2, Config{DropProb: 0.5, Seed: seed,
		Retry: RetryPolicy{MaxAttempts: 2, Backoff: time.Millisecond}})
	ok, err := nw.SendReliable(0, 1, "k", []byte("xyz"))
	if err != nil || !ok {
		t.Fatalf("retry delivery failed: ok=%v err=%v", ok, err)
	}
	st := nw.Stats()
	if st.MessagesSent != 2 || st.MessagesDropped != 1 || st.Retries != 1 ||
		st.RetryBytes != 3 || st.GaveUp != 0 || st.BackoffTime != time.Millisecond {
		t.Fatalf("retry accounting %+v", st)
	}
	if nw.Pending(1) != 1 {
		t.Fatal("message not delivered")
	}
}

// TestFaultPlanDeterministicByteExact replays a mixed chaos script twice
// and requires bit-identical Stats — the reproducibility contract for
// every figure driven by these counters.
func TestFaultPlanDeterministicByteExact(t *testing.T) {
	run := func() Stats {
		nw := New(4, Config{
			DropProb: 0.3, Seed: 42,
			Retry: RetryPolicy{MaxAttempts: 3, Backoff: 2 * time.Millisecond, RoundBudget: 50 * time.Millisecond},
			Faults: FaultPlan{
				Seed:        7,
				CorruptProb: 0.2,
				Partitions:  []Partition{{A: 1, B: 2, StartMin: 30, EndMin: 90}},
				Stragglers:  []Straggler{{Agent: 3, Factor: 4}},
				Crashes:     []CrashWindow{{Agent: 0, StartMin: 100, EndMin: 140}},
			},
		})
		payload := make([]byte, 64)
		for minute := 0; minute < 200; minute += 10 {
			nw.SetNow(minute)
			for from := 0; from < 4; from++ {
				_ = nw.Broadcast(from, "chaos", payload)
			}
			for a := 0; a < 4; a++ {
				nw.Collect(a)
			}
		}
		return nw.Stats()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("chaos fabric not deterministic:\n  %+v\nvs %+v", a, b)
	}
	if a.Retries == 0 || a.MessagesCorrupted == 0 || a.MessagesBlocked == 0 || a.RetryBytes == 0 {
		t.Fatalf("chaos script failed to exercise the fault layer: %+v", a)
	}
}

// TestFaultPlanValidate covers the constructor's plan validation.
func TestFaultPlanValidate(t *testing.T) {
	bad := []FaultPlan{
		{Partitions: []Partition{{A: 0, B: 5}}},
		{Partitions: []Partition{{A: 1, B: 1}}},
		{Stragglers: []Straggler{{Agent: -1}}},
		{Crashes: []CrashWindow{{Agent: 9}}},
		{CorruptProb: 1.5},
	}
	for i, plan := range bad {
		if err := plan.Validate(3); err == nil {
			t.Fatalf("bad plan %d accepted", i)
		}
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("New with bad plan %d did not panic", i)
				}
			}()
			New(3, Config{Faults: plan})
		}()
	}
	good := FaultPlan{
		Partitions: []Partition{{A: 0, B: 2, EndMin: 10}},
		Stragglers: []Straggler{{Agent: 2, Factor: 2}},
		Crashes:    []CrashWindow{{Agent: 1, EndMin: 5}},
	}
	if err := good.Validate(3); err != nil {
		t.Fatal(err)
	}
	if got := good.MaxAgent(); got != 2 {
		t.Fatalf("MaxAgent = %d, want 2", got)
	}
	if (FaultPlan{}).MaxAgent() != -1 {
		t.Fatal("empty plan MaxAgent should be -1")
	}
	if !(FaultPlan{}).Empty() || good.Empty() {
		t.Fatal("Empty misclassifies")
	}
}

// TestPartitionSeconds checks outage accounting clips to the run window.
func TestPartitionSeconds(t *testing.T) {
	plan := FaultPlan{Partitions: []Partition{
		{A: 0, B: 1, StartMin: 10, EndMin: 30},  // fully inside: 20 min
		{A: 0, B: 2, StartMin: -5, EndMin: 10},  // clipped at 0: 10 min
		{A: 1, B: 2, StartMin: 90, EndMin: 200}, // clipped at 100: 10 min
		{A: 0, B: 1, StartMin: 300, EndMin: 400},
	}}
	if got := plan.PartitionSeconds(100); got != 40*60 {
		t.Fatalf("PartitionSeconds = %v, want %v", got, 40*60)
	}
	if (FaultPlan{}).PartitionSeconds(100) != 0 {
		t.Fatal("empty plan should have zero outage")
	}
}
