package fednet

import (
	"errors"
	"reflect"
	"testing"
)

// TestTopologyValidation is the edge-case table the issue pins: bad
// sampled fan-outs, malformed cluster assignments, and degenerate fleets
// must come back as typed errors (ErrTopology) from NewChecked — no
// panics, no silent acceptance — while the valid shapes construct.
func TestTopologyValidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		n    int
		cfg  Config
		ok   bool
	}{
		{name: "sampled-k-zero", n: 4, cfg: Config{Topology: Sampled}},
		{name: "sampled-k-negative", n: 4, cfg: Config{Topology: Sampled, SampleK: -1}},
		{name: "sampled-k-equals-fleet", n: 4, cfg: Config{Topology: Sampled, SampleK: 4}},
		{name: "sampled-k-exceeds-fleet", n: 4, cfg: Config{Topology: Sampled, SampleK: 9}},
		{name: "sampled-single-home", n: 1, cfg: Config{Topology: Sampled, SampleK: 1}},
		{name: "sampled-valid", n: 4, cfg: Config{Topology: Sampled, SampleK: 3}, ok: true},
		{name: "sampled-valid-k1", n: 2, cfg: Config{Topology: Sampled, SampleK: 1}, ok: true},
		{name: "cluster-no-size", n: 4, cfg: Config{Topology: Cluster}},
		{name: "cluster-negative-size", n: 4, cfg: Config{Topology: Cluster, ClusterSize: -2}},
		{name: "cluster-empty-cluster", n: 4, cfg: Config{Topology: Cluster, Clusters: [][]int{{0, 1}, {}, {2, 3}}}},
		{name: "cluster-duplicate-agent", n: 4, cfg: Config{Topology: Cluster, Clusters: [][]int{{0, 1}, {1, 2, 3}}}},
		{name: "cluster-duplicate-within", n: 4, cfg: Config{Topology: Cluster, Clusters: [][]int{{0, 1, 1}, {2, 3}}}},
		{name: "cluster-agent-out-of-range", n: 4, cfg: Config{Topology: Cluster, Clusters: [][]int{{0, 1}, {2, 7}}}},
		{name: "cluster-agent-negative", n: 4, cfg: Config{Topology: Cluster, Clusters: [][]int{{0, -1}, {2, 3}}}},
		{name: "cluster-unassigned-agent", n: 4, cfg: Config{Topology: Cluster, Clusters: [][]int{{0, 1}, {2}}}},
		{name: "cluster-valid-explicit", n: 4, cfg: Config{Topology: Cluster, Clusters: [][]int{{3, 0}, {1, 2}}}, ok: true},
		{name: "cluster-valid-sized", n: 5, cfg: Config{Topology: Cluster, ClusterSize: 2}, ok: true},
		{name: "cluster-single-home", n: 1, cfg: Config{Topology: Cluster, ClusterSize: 1}, ok: true},
		{name: "cluster-size-exceeds-fleet", n: 3, cfg: Config{Topology: Cluster, ClusterSize: 8}, ok: true},
		{name: "all-to-all-single-home", n: 1, cfg: Config{}, ok: true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			nw, err := NewChecked(tc.n, tc.cfg)
			if tc.ok {
				if err != nil {
					t.Fatalf("NewChecked: unexpected error %v", err)
				}
				if nw == nil {
					t.Fatal("NewChecked returned nil network without error")
				}
				return
			}
			if err == nil {
				t.Fatal("NewChecked accepted an invalid topology config")
			}
			if !errors.Is(err, ErrTopology) {
				t.Fatalf("error %v does not wrap ErrTopology", err)
			}
			// New must refuse the same config by panicking, matching its
			// n < 1 contract.
			defer func() {
				if recover() == nil {
					t.Fatal("New did not panic on an invalid topology config")
				}
			}()
			New(tc.n, tc.cfg)
		})
	}
}

// TestSampledPeersDeterministic pins the sampling law: peer sets are a
// pure function of (Seed, epoch, agent), so twin networks agree at every
// epoch, re-deriving an epoch reproduces it, and each set holds exactly k
// distinct peers excluding the owner.
func TestSampledPeersDeterministic(t *testing.T) {
	const n, k, epochs = 16, 4, 5
	cfg := Config{Topology: Sampled, SampleK: k, Seed: 1}
	a, b := New(n, cfg), New(n, cfg)
	history := make([][][]int, 0, epochs)
	for e := 0; e < epochs; e++ {
		epoch := make([][]int, n)
		for i := 0; i < n; i++ {
			pa, pb := a.SampledPeers(i), b.SampledPeers(i)
			if !reflect.DeepEqual(pa, pb) {
				t.Fatalf("epoch %d agent %d: twins disagree: %v vs %v", e, i, pa, pb)
			}
			if len(pa) != k {
				t.Fatalf("epoch %d agent %d: %d peers, want %d", e, i, len(pa), k)
			}
			seen := map[int]bool{}
			for _, p := range pa {
				if p == i {
					t.Fatalf("epoch %d agent %d sampled itself", e, i)
				}
				if p < 0 || p >= n {
					t.Fatalf("epoch %d agent %d sampled out-of-range peer %d", e, i, p)
				}
				if seen[p] {
					t.Fatalf("epoch %d agent %d sampled duplicate peer %d", e, i, p)
				}
				seen[p] = true
			}
			epoch[i] = append([]int(nil), pa...)
		}
		history = append(history, epoch)
		a.AdvanceRoundEpoch()
		b.AdvanceRoundEpoch()
	}
	// Resampling must actually change the graph between epochs (with n=16,
	// k=4, identical consecutive samplings for all 16 agents would be
	// astronomically unlikely — a frozen epoch counter is the real risk).
	changed := false
	for e := 1; e < epochs && !changed; e++ {
		changed = !reflect.DeepEqual(history[e-1], history[e])
	}
	if !changed {
		t.Fatal("peer sets never changed across epochs")
	}
	// Drop and fault draws must not perturb sampling: a network that
	// consumed RNG on traffic still samples the same peers at each epoch.
	c := New(n, Config{Topology: Sampled, SampleK: k, Seed: 1, DropProb: 0.5})
	for i := 0; i < n; i++ {
		for _, to := range c.SampledPeers(i) {
			if err := c.Send(i, to, "x", []byte{1, 2, 3}); err != nil {
				t.Fatal(err)
			}
		}
	}
	c.AdvanceRoundEpoch()
	for i := 0; i < n; i++ {
		if got, want := c.SampledPeers(i), history[1][i]; !reflect.DeepEqual(got, want) {
			t.Fatalf("agent %d epoch 1 peers perturbed by traffic: %v vs %v", i, got, want)
		}
	}
}

// TestSampledRouting checks the permission surface: sends to sampled
// peers pass, sends to anyone else fail, and a broadcast reaches exactly
// the k sampled peers.
func TestSampledRouting(t *testing.T) {
	const n, k = 8, 3
	nw := New(n, Config{Topology: Sampled, SampleK: k, Seed: 2})
	peers := map[int]bool{}
	for _, p := range nw.SampledPeers(0) {
		peers[p] = true
	}
	for to := 1; to < n; to++ {
		err := nw.Send(0, to, "x", []byte{1})
		if peers[to] && err != nil {
			t.Fatalf("send to sampled peer %d failed: %v", to, err)
		}
		if !peers[to] && err == nil {
			t.Fatalf("send to non-peer %d was allowed", to)
		}
	}
	nw.ResetStats()
	for i := 0; i < n; i++ {
		if err := nw.Broadcast(i, "x", []byte{1}); err != nil {
			t.Fatal(err)
		}
	}
	if got := nw.Stats().MessagesSent; got != n*k {
		t.Fatalf("sampled broadcast round sent %d messages, want n·k = %d", got, n*k)
	}
	// The push graph is directed: i sampling j does not license j → i.
	for i := 0; i < n; i++ {
		for _, j := range nw.SampledPeers(i) {
			back := false
			for _, p := range nw.SampledPeers(j) {
				if p == i {
					back = true
				}
			}
			if !back {
				if err := nw.Send(j, i, "x", []byte{1}); err == nil {
					t.Fatalf("reverse send %d -> %d allowed without sampling", j, i)
				}
				return
			}
		}
	}
}

// TestClusterRouting checks the two-level permission surface: member ↔
// own aggregator and aggregator ↔ aggregator pass; member ↔ member and
// cross-cluster member links fail.
func TestClusterRouting(t *testing.T) {
	// Clusters {0,1,2} and {3,4,5}: aggregators 0 and 3.
	nw := New(6, Config{Topology: Cluster, ClusterSize: 3})
	if got := nw.Clusters(); !reflect.DeepEqual(got, [][]int{{0, 1, 2}, {3, 4, 5}}) {
		t.Fatalf("contiguous clustering = %v", got)
	}
	if nw.Aggregator(0) != 0 || nw.Aggregator(1) != 3 {
		t.Fatalf("aggregators = %d, %d, want 0, 3", nw.Aggregator(0), nw.Aggregator(1))
	}
	if nw.ClusterOf(4) != 1 || nw.ClusterOf(2) != 0 {
		t.Fatalf("ClusterOf = %d, %d, want 1, 0", nw.ClusterOf(4), nw.ClusterOf(2))
	}
	allow := [][2]int{{1, 0}, {0, 1}, {2, 0}, {4, 3}, {0, 3}, {3, 0}}
	deny := [][2]int{{1, 2}, {4, 5}, {1, 3}, {1, 4}, {5, 0}, {0, 4}}
	for _, p := range allow {
		if err := nw.Send(p[0], p[1], "x", []byte{1}); err != nil {
			t.Fatalf("cluster send %d -> %d rejected: %v", p[0], p[1], err)
		}
	}
	for _, p := range deny {
		if err := nw.Send(p[0], p[1], "x", []byte{1}); err == nil {
			t.Fatalf("cluster send %d -> %d allowed", p[0], p[1])
		}
	}
}

// TestRoundMessagesClosedForms pins the per-topology message-complexity
// formulas RoundMessages (and through it ChargeBroadcastRounds) report.
func TestRoundMessagesClosedForms(t *testing.T) {
	for _, tc := range []struct {
		name string
		n    int
		cfg  Config
		want int
	}{
		{name: "all-to-all", n: 8, cfg: Config{}, want: 8 * 7},
		{name: "star", n: 8, cfg: Config{Topology: Star}, want: 2 * 7},
		{name: "ring", n: 8, cfg: Config{Topology: Ring}, want: 16},
		{name: "sampled", n: 8, cfg: Config{Topology: Sampled, SampleK: 3}, want: 8 * 3},
		// 8 homes in clusters of 3 → C = 3 ({0,1,2},{3,4,5},{6,7}):
		// 5 uploads + 3·2 summaries + 3 multicast downloads.
		{name: "cluster", n: 8, cfg: Config{Topology: Cluster, ClusterSize: 3}, want: 5 + 6 + 3},
		// Singleton clusters have no uploads or downloads: a pure
		// aggregator mesh.
		{name: "cluster-singletons", n: 4, cfg: Config{Topology: Cluster, ClusterSize: 1}, want: 4 * 3},
		{name: "single-home", n: 1, cfg: Config{}, want: 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			nw := New(tc.n, tc.cfg)
			if got := nw.RoundMessages(); got != tc.want {
				t.Fatalf("RoundMessages = %d, want %d", got, tc.want)
			}
			nw.ChargeBroadcastRounds(10, 2)
			if got := nw.Stats().MessagesSent; got != 2*tc.want {
				t.Fatalf("ChargeBroadcastRounds charged %d messages, want %d", got, 2*tc.want)
			}
		})
	}
}

// TestMulticastAccounting pins the shared-medium semantics: one charged
// transmission regardless of fan-out, per-recipient partition gating, and
// blocked/dropped handling under retry.
func TestMulticastAccounting(t *testing.T) {
	payload := []byte{1, 2, 3, 4}
	t.Run("clean", func(t *testing.T) {
		nw := New(4, Config{Topology: Cluster, ClusterSize: 4})
		ok, err := nw.Multicast(0, []int{1, 2, 3}, "dl", payload)
		if err != nil || !ok {
			t.Fatalf("multicast = %v, %v", ok, err)
		}
		st := nw.Stats()
		if st.MessagesSent != 1 || st.BytesSent != int64(len(payload)) {
			t.Fatalf("charged %d msgs / %d bytes, want 1 / %d", st.MessagesSent, st.BytesSent, len(payload))
		}
		if st.UniqueMessages != 1 || st.UniqueBytes != int64(len(payload)) {
			t.Fatalf("unique charge %d / %d, want 1 / %d", st.UniqueMessages, st.UniqueBytes, len(payload))
		}
		for to := 1; to < 4; to++ {
			if nw.Pending(to) != 1 {
				t.Fatalf("recipient %d has %d pending, want 1", to, nw.Pending(to))
			}
		}
	})
	t.Run("partitioned-recipient", func(t *testing.T) {
		nw := New(4, Config{Topology: Cluster, ClusterSize: 4,
			Faults: FaultPlan{Partitions: []Partition{{A: 0, B: 2, EndMin: 9999}}}})
		ok, err := nw.Multicast(0, []int{1, 2, 3}, "dl", payload)
		if err != nil || !ok {
			t.Fatalf("multicast = %v, %v", ok, err)
		}
		if got := []int{nw.Pending(1), nw.Pending(2), nw.Pending(3)}; !reflect.DeepEqual(got, []int{1, 0, 1}) {
			t.Fatalf("pending = %v, want [1 0 1] (partitioned recipient misses)", got)
		}
		if st := nw.Stats(); st.MessagesSent != 1 {
			t.Fatalf("charged %d msgs, want 1 (partition gates receipt, not the transmission)", st.MessagesSent)
		}
	})
	t.Run("all-blocked", func(t *testing.T) {
		nw := New(4, Config{Topology: Cluster, ClusterSize: 4,
			Faults: FaultPlan{Crashes: []CrashWindow{{Agent: 1, EndMin: 9999}, {Agent: 2, EndMin: 9999}, {Agent: 3, EndMin: 9999}}}})
		ok, err := nw.Multicast(0, []int{1, 2, 3}, "dl", payload)
		if err != nil || ok {
			t.Fatalf("multicast to all-crashed recipients = %v, %v, want false, nil", ok, err)
		}
		st := nw.Stats()
		if st.MessagesSent != 0 || st.BytesSent != 0 || st.MessagesBlocked != 1 {
			t.Fatalf("all-blocked multicast charged %d msgs / %d bytes / %d blocked", st.MessagesSent, st.BytesSent, st.MessagesBlocked)
		}
	})
	t.Run("dropped-then-retried", func(t *testing.T) {
		// DropProb 1 with 3 attempts: every attempt drops, each charged.
		nw := New(4, Config{Topology: Cluster, ClusterSize: 4, DropProb: 1,
			Retry: RetryPolicy{MaxAttempts: 3}})
		ok, err := nw.Multicast(0, []int{1, 2, 3}, "dl", payload)
		if err != nil || ok {
			t.Fatalf("multicast = %v, %v, want false, nil", ok, err)
		}
		st := nw.Stats()
		if st.MessagesSent != 3 || st.MessagesDropped != 3 || st.Retries != 2 || st.GaveUp != 1 {
			t.Fatalf("retry accounting = %+v", st)
		}
		if st.UniqueMessages != 1 {
			t.Fatalf("unique messages = %d, want 1", st.UniqueMessages)
		}
	})
	t.Run("topology-violation", func(t *testing.T) {
		// Agent 1 is not an aggregator; multicasting across clusters must
		// fail as a typed routing error before anything is charged.
		nw := New(6, Config{Topology: Cluster, ClusterSize: 3})
		if _, err := nw.Multicast(1, []int{4}, "dl", payload); err == nil {
			t.Fatal("cross-cluster member multicast was allowed")
		}
		if st := nw.Stats(); st.MessagesSent != 0 || st.MessagesBlocked != 0 {
			t.Fatalf("failed multicast still charged: %+v", st)
		}
	})
}

// FuzzTopologyConfig throws arbitrary topology configurations at
// NewChecked: it must never panic, every rejection must wrap ErrTopology,
// and every acceptance must yield structurally sound routing state (peer
// sets of size k without self/duplicates; clusters that partition the
// fleet).
func FuzzTopologyConfig(f *testing.F) {
	f.Add(4, 0, 2, 2, []byte{})
	f.Add(1, 1, 1, 0, []byte{})
	f.Add(8, 1, 9, 3, []byte{0, 1, 2})
	f.Add(6, 2, 0, 0, []byte{3, 0, 255, 1, 2, 4, 5})
	f.Add(16, 2, 3, 5, []byte{0, 0, 1, 1})
	f.Fuzz(func(t *testing.T, n, topo, k, clusterSize int, clusterBytes []byte) {
		if n < 1 || n > 64 {
			n = (n%64+64)%64 + 1
		}
		cfg := Config{
			Topology:    []Topology{AllToAll, Sampled, Cluster}[((topo%3)+3)%3],
			SampleK:     k,
			ClusterSize: clusterSize,
		}
		// Decode clusterBytes into an explicit assignment: 255 starts a new
		// cluster, anything else appends an agent index (possibly invalid —
		// that's the point).
		if len(clusterBytes) > 0 {
			cur := []int{}
			for _, b := range clusterBytes {
				if b == 255 {
					cfg.Clusters = append(cfg.Clusters, cur)
					cur = []int{}
					continue
				}
				cur = append(cur, int(b))
			}
			cfg.Clusters = append(cfg.Clusters, cur)
		}
		nw, err := NewChecked(n, cfg)
		if err != nil {
			if !errors.Is(err, ErrTopology) {
				t.Fatalf("rejection not typed: %v", err)
			}
			return
		}
		switch cfg.Topology {
		case Sampled:
			for a := 0; a < n; a++ {
				peers := nw.SampledPeers(a)
				if len(peers) != cfg.SampleK {
					t.Fatalf("agent %d: %d peers, want %d", a, len(peers), cfg.SampleK)
				}
				seen := map[int]bool{}
				for _, p := range peers {
					if p == a || p < 0 || p >= n || seen[p] {
						t.Fatalf("agent %d: malformed peer set %v", a, peers)
					}
					seen[p] = true
				}
			}
			nw.AdvanceRoundEpoch()
			if nw.RoundEpoch() != 1 {
				t.Fatalf("epoch = %d after one advance", nw.RoundEpoch())
			}
		case Cluster:
			assigned := make([]bool, n)
			for ci, members := range nw.Clusters() {
				if len(members) == 0 {
					t.Fatalf("accepted config has empty cluster %d", ci)
				}
				for _, a := range members {
					if a < 0 || a >= n || assigned[a] {
						t.Fatalf("cluster %d: malformed members %v", ci, members)
					}
					assigned[a] = true
				}
				if nw.Aggregator(ci) != members[0] {
					t.Fatalf("cluster %d aggregator %d != first member %d", ci, nw.Aggregator(ci), members[0])
				}
			}
			for a, ok := range assigned {
				if !ok {
					t.Fatalf("agent %d unassigned in accepted config", a)
				}
			}
		}
		if msgs := nw.RoundMessages(); msgs < 0 {
			t.Fatalf("RoundMessages = %d", msgs)
		}
	})
}
