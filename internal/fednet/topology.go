package fednet

// Scalable federation topologies (DESIGN.md §12). The paper's LAN is
// all-to-all — O(n²) messages per round — which caps the fleet size the
// simulator (and any real deployment) can push through a round. Two
// sub-quadratic fabrics lift that wall:
//
//   - Sampled: random-k gossip. Every round epoch, each agent draws k
//     peers deterministically from (Seed, epoch, agent) and may send only
//     to them. One exchange round moves exactly n·k messages; resampling
//     every epoch keeps the union graph expander-like, so repeated rounds
//     still drive the fleet to consensus.
//   - Cluster: hierarchical aggregation (Briggs et al.'s clustered FL for
//     residential fleets). Agents are grouped into clusters, each with an
//     aggregator (its first member). Members speak only to their
//     aggregator over the shared in-building segment; aggregators speak
//     to each other over routed links. One round moves
//     (n−C) + C·(C−1) + C′ messages for C clusters (C′ of them with ≥ 2
//     members): uploads, summary exchange, and one multicast download per
//     multi-member cluster.
//
// All sampling and grouping is a pure function of the Config — no draw
// touches the drop/corruption RNG streams — so twin networks built from
// one Config route identically, which is what the deterministic topology
// test suites pin.

import (
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// ErrTopology marks an invalid topology configuration: a sampled fan-out
// that cannot be satisfied, a malformed cluster assignment, and so on.
// Every validation failure wraps it, so callers can errors.Is-match the
// whole family.
var ErrTopology = errors.New("fednet: invalid topology configuration")

// ValidateTopology checks the topology-specific configuration against a
// fleet of n agents. It never panics; every failure wraps ErrTopology.
// Kinds without extra configuration (AllToAll, Star, Ring) always pass.
func (c Config) ValidateTopology(n int) error {
	if n < 1 {
		return fmt.Errorf("%w: need at least 1 agent, got %d", ErrTopology, n)
	}
	switch c.Topology {
	case Sampled:
		if c.SampleK < 1 {
			return fmt.Errorf("%w: sampled gossip needs SampleK ≥ 1, got %d", ErrTopology, c.SampleK)
		}
		if n < 2 {
			return fmt.Errorf("%w: sampled gossip needs ≥ 2 agents, got %d", ErrTopology, n)
		}
		if c.SampleK >= n {
			return fmt.Errorf("%w: SampleK %d must be < fleet size %d (an agent cannot sample itself)", ErrTopology, c.SampleK, n)
		}
	case Cluster:
		if _, _, err := c.clusterSpec(n); err != nil {
			return err
		}
	}
	return nil
}

// clusterSpec normalizes the cluster assignment for n agents: the cluster
// member lists (each cluster's first member is its aggregator) and the
// agent → cluster index map. Explicit Clusters win; otherwise agents are
// grouped contiguously into clusters of ClusterSize (the last cluster may
// be smaller). Every failure wraps ErrTopology.
func (c Config) clusterSpec(n int) (clusters [][]int, clusterOf []int, err error) {
	if len(c.Clusters) == 0 {
		if c.ClusterSize < 1 {
			return nil, nil, fmt.Errorf("%w: cluster topology needs ClusterSize ≥ 1 (or explicit Clusters), got %d", ErrTopology, c.ClusterSize)
		}
		clusterOf = make([]int, n)
		for start := 0; start < n; start += c.ClusterSize {
			end := start + c.ClusterSize
			if end > n {
				end = n
			}
			members := make([]int, 0, end-start)
			for a := start; a < end; a++ {
				clusterOf[a] = len(clusters)
				members = append(members, a)
			}
			clusters = append(clusters, members)
		}
		return clusters, clusterOf, nil
	}
	clusterOf = make([]int, n)
	for i := range clusterOf {
		clusterOf[i] = -1
	}
	clusters = make([][]int, 0, len(c.Clusters))
	for ci, members := range c.Clusters {
		if len(members) == 0 {
			return nil, nil, fmt.Errorf("%w: cluster %d is empty", ErrTopology, ci)
		}
		copied := make([]int, len(members))
		for mi, a := range members {
			if a < 0 || a >= n {
				return nil, nil, fmt.Errorf("%w: cluster %d member %d out of range [0,%d)", ErrTopology, ci, a, n)
			}
			if clusterOf[a] != -1 {
				return nil, nil, fmt.Errorf("%w: agent %d assigned to clusters %d and %d", ErrTopology, a, clusterOf[a], ci)
			}
			clusterOf[a] = ci
			copied[mi] = a
		}
		clusters = append(clusters, copied)
	}
	for a, ci := range clusterOf {
		if ci == -1 {
			return nil, nil, fmt.Errorf("%w: agent %d belongs to no cluster", ErrTopology, a)
		}
	}
	return clusters, clusterOf, nil
}

// topoSeed mixes (seed, epoch, agent) into one RNG seed (splitmix64-style
// finalizer). The sampling stream is independent of the drop and
// corruption RNGs, so adding or removing topology draws never perturbs the
// fault processes — the property the twin-fleet determinism tests rely on.
func topoSeed(seed int64, epoch, agent int) int64 {
	z := uint64(seed) + 0x9E3779B97F4A7C15*uint64(epoch+1) + 0xBF58476D1CE4E5B9*uint64(agent+1)
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// samplePeers draws k distinct peers for one agent at one epoch — a pure
// function of (seed, epoch, agent, n, k). Small fan-outs use rejection
// sampling (O(k) expected); dense fan-outs fall back to a partial
// Fisher–Yates shuffle over the candidate list.
func samplePeers(seed int64, epoch, agent, n, k int) []int {
	rng := rand.New(rand.NewSource(topoSeed(seed, epoch, agent)))
	peers := make([]int, 0, k)
	if k <= (n-1)/2 {
		seen := make(map[int]bool, k)
		for len(peers) < k {
			p := rng.Intn(n)
			if p == agent || seen[p] {
				continue
			}
			seen[p] = true
			peers = append(peers, p)
		}
		return peers
	}
	cands := make([]int, 0, n-1)
	for a := 0; a < n; a++ {
		if a != agent {
			cands = append(cands, a)
		}
	}
	for i := 0; i < k; i++ {
		j := i + rng.Intn(len(cands)-i)
		cands[i], cands[j] = cands[j], cands[i]
	}
	return append(peers, cands[:k]...)
}

// initTopology precomputes the routing state New needs: the cluster
// normalization and the epoch-0 peer samples. Caller guarantees the
// config already validated.
func (nw *Network) initTopology() {
	switch nw.cfg.Topology {
	case Sampled:
		nw.resamplePeersLocked()
	case Cluster:
		clusters, clusterOf, err := nw.cfg.clusterSpec(nw.N())
		if err != nil {
			// New validated the config; reaching here is a programming error.
			panic(err.Error())
		}
		nw.clusters, nw.clusterOf = clusters, clusterOf
	}
}

// resamplePeersLocked redraws every agent's peer set for the current
// epoch. Caller holds nw.mu (or is the constructor).
func (nw *Network) resamplePeersLocked() {
	n := nw.N()
	if nw.peers == nil {
		nw.peers = make([][]int, n)
	}
	for a := 0; a < n; a++ {
		nw.peers[a] = samplePeers(nw.cfg.Seed, nw.topoEpoch, a, n, nw.cfg.SampleK)
	}
}

// AdvanceRoundEpoch moves the Sampled topology to its next round epoch,
// redrawing every agent's k peers. Federation rounds call it once per
// exchange so successive rounds mix over fresh random graphs. It is a
// no-op for other topologies.
func (nw *Network) AdvanceRoundEpoch() {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	nw.topoEpoch++
	if nw.cfg.Topology == Sampled {
		nw.resamplePeersLocked()
	}
}

// RoundEpoch returns the current topology round epoch (0 before any
// AdvanceRoundEpoch).
func (nw *Network) RoundEpoch() int {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	return nw.topoEpoch
}

// SampledPeers returns the agent's current-epoch sampled peer set under
// the Sampled topology (nil otherwise). The slice is shared — callers
// must not modify it.
func (nw *Network) SampledPeers(agent int) []int {
	if err := nw.checkEndpoint(agent); err != nil {
		panic(err)
	}
	nw.mu.Lock()
	defer nw.mu.Unlock()
	if nw.cfg.Topology != Sampled {
		return nil
	}
	return nw.peers[agent]
}

// sampledPermitted reports whether from may send to to at the current
// epoch: to must be in from's sampled peer set. Caller need not hold
// nw.mu for reads of peers because the slice is replaced, not mutated —
// but all call sites hold it anyway via the send paths.
func (nw *Network) sampledPermitted(from, to int) bool {
	for _, p := range nw.peers[from] {
		if p == to {
			return true
		}
	}
	return false
}

// Clusters returns the normalized cluster member lists under the Cluster
// topology (nil otherwise). Each cluster's first member is its
// aggregator. The slices are shared — callers must not modify them.
func (nw *Network) Clusters() [][]int {
	if nw.cfg.Topology != Cluster {
		return nil
	}
	return nw.clusters
}

// ClusterOf returns the agent's cluster index under the Cluster topology
// (-1 otherwise).
func (nw *Network) ClusterOf(agent int) int {
	if err := nw.checkEndpoint(agent); err != nil {
		panic(err)
	}
	if nw.cfg.Topology != Cluster {
		return -1
	}
	return nw.clusterOf[agent]
}

// Aggregator returns the aggregator agent of one cluster.
func (nw *Network) Aggregator(cluster int) int {
	if cluster < 0 || cluster >= len(nw.clusters) {
		panic(fmt.Sprintf("fednet: cluster %d out of range [0,%d)", cluster, len(nw.clusters)))
	}
	return nw.clusters[cluster][0]
}

// isAggregator reports whether the agent heads its cluster.
func (nw *Network) isAggregator(a int) bool {
	return nw.clusters[nw.clusterOf[a]][0] == a
}

// clusterPermitted reports whether from may send to to under the Cluster
// topology: member ↔ own aggregator on the shared segment, aggregator ↔
// aggregator on the routed mesh.
func (nw *Network) clusterPermitted(from, to int) bool {
	if nw.clusterOf[from] == nw.clusterOf[to] {
		return nw.isAggregator(from) || nw.isAggregator(to)
	}
	return nw.isAggregator(from) && nw.isAggregator(to)
}

// RoundMessages returns the message count of one full parameter-exchange
// round under the network's topology — the closed forms the
// message-complexity tests and ChargeBroadcastRounds share (DESIGN.md
// §12). For Cluster it is uploads (n−C) + summary exchange C·(C−1) + one
// multicast download per multi-member cluster.
func (nw *Network) RoundMessages() int {
	n := nw.N()
	if n <= 1 {
		return 0
	}
	switch nw.cfg.Topology {
	case Star:
		return 2 * (n - 1)
	case Ring:
		return 2 * n
	case Sampled:
		return n * nw.cfg.SampleK
	case Cluster:
		c := len(nw.clusters)
		multi := 0
		for _, members := range nw.clusters {
			if len(members) > 1 {
				multi++
			}
		}
		return (n - c) + c*(c-1) + multi
	default:
		return n * (n - 1)
	}
}

// Multicast delivers one payload from an agent to several permitted peers
// over a shared medium: the transmission is charged once — one message,
// one payload of bytes, one drop and one corruption draw — no matter how
// many recipients hear it. It models the intra-cluster download leg,
// where an aggregator's single link-layer transmission reaches every
// member of its building segment.
//
// Per-link partitions and crash windows still gate each recipient
// individually: blocked recipients miss the transmission without
// affecting the others. An attempt with no reachable recipient is a
// blocked send (no bytes move). With a multi-attempt RetryPolicy, a
// dropped or fully blocked transmission is retried with backoff like
// SendReliable. It reports whether at least one recipient received the
// payload.
func (nw *Network) Multicast(from int, tos []int, kind string, payload []byte) (bool, error) {
	if err := nw.checkEndpoint(from); err != nil {
		return false, err
	}
	for _, to := range tos {
		if err := nw.checkSend(from, to); err != nil {
			return false, err
		}
	}
	nw.mu.Lock()
	defer nw.mu.Unlock()
	r := nw.cfg.Retry.withDefaults()
	backoff := r.Backoff
	wired := false
	for att := 0; att < r.MaxAttempts; att++ {
		retry := att > 0
		reachable := nw.reachable(from, tos)
		if len(reachable) == 0 {
			nw.stats.MessagesBlocked++
			nw.tel.blocked.Inc()
		} else {
			nw.stats.MessagesSent++
			nw.stats.BytesSent += int64(len(payload))
			nw.stats.SimulatedTime += nw.transferFor(from, len(payload))
			nw.tel.attempts.Inc()
			nw.tel.bytes.Add(int64(len(payload)))
			if retry {
				nw.stats.Retries++
				nw.stats.RetryBytes += int64(len(payload))
				nw.tel.retries.Inc()
			}
			if !wired {
				wired = true
				nw.chargeUnique(payload)
			}
			if !(nw.cfg.DropProb > 0 && nw.rng.Float64() < nw.cfg.DropProb) {
				delivered := payload
				if p := nw.cfg.Faults.CorruptProb; p > 0 && len(payload) > 0 && nw.crng.Float64() < p {
					corrupted := append([]byte(nil), payload...)
					bit := nw.crng.Intn(len(corrupted) * 8)
					corrupted[bit/8] ^= 1 << (bit % 8)
					delivered = corrupted
					nw.stats.MessagesCorrupted++
					nw.tel.corrupted.Inc()
				}
				for _, to := range reachable {
					nw.inboxes[to] = append(nw.inboxes[to], Message{From: from, To: to, Kind: kind, Payload: delivered})
				}
				return true, nil
			}
			nw.stats.MessagesDropped++
			nw.tel.dropped.Inc()
		}
		if att+1 >= r.MaxAttempts {
			break
		}
		nw.stats.BackoffTime += backoff
		nw.stats.SimulatedTime += backoff
		backoff = time.Duration(float64(backoff) * r.BackoffFactor)
	}
	if r.MaxAttempts > 1 {
		nw.stats.GaveUp++
		nw.tel.gaveUp.Inc()
	}
	return false, nil
}

// reachable filters the recipient list down to agents whose link from
// `from` is not severed by a partition or crash window right now. Caller
// holds nw.mu.
func (nw *Network) reachable(from int, tos []int) []int {
	out := make([]int, 0, len(tos))
	for _, to := range tos {
		if !nw.cfg.Faults.blocked(from, to, nw.now) {
			out = append(out, to)
		}
	}
	return out
}
