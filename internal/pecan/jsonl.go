package pecan

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/energy"
)

// maxJSONLLine bounds one record's size so a hostile stream cannot force
// an unbounded token allocation.
const maxJSONLLine = 1 << 16

// jsonlRecord is one Dataport-shaped JSON-lines sample. Mode is optional:
// real exports carry only the reading, and the device's electrical
// signature classifies it — the same classifier the learning pipeline uses.
type jsonlRecord struct {
	HomeID    int     `json:"home_id"`
	Archetype string  `json:"archetype"`
	Device    string  `json:"device"`
	Minute    int     `json:"minute"`
	KW        float64 `json:"kw"`
	Mode      string  `json:"mode"`
}

// ReadJSONL parses a JSON-lines corpus (one object per line with home_id,
// device, minute, kw, and optional mode/archetype fields), streaming each
// (home, device) series into compressed day blocks exactly like ReadCSV.
// The same strictness applies: per-trace minutes must count 0,1,2,... and
// readings must be finite. Blank lines are skipped.
func ReadJSONL(r io.Reader) (*Dataset, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 4096), maxJSONLLine)
	homes := map[int]*Home{}
	var order []int
	type key struct {
		home int
		dev  string
	}
	builders := map[key]*TraceBuilder{}
	byHome := map[int][]key{}
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var rec jsonlRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			return nil, fmt.Errorf("pecan: jsonl line %d: %w", line, err)
		}
		h, ok := homes[rec.HomeID]
		if !ok {
			h = &Home{ID: rec.HomeID, Archetype: Archetype{Name: rec.Archetype}}
			homes[rec.HomeID] = h
			order = append(order, rec.HomeID)
		}
		k := key{rec.HomeID, rec.Device}
		b, ok := builders[k]
		if !ok {
			dev, found := deviceByType(rec.Device)
			if !found {
				dev = energy.Device{Type: rec.Device, StandbyKW: 0.005, OnKW: 0.1}
			}
			b = NewTraceBuilder(dev, Config{})
			builders[k] = b
			byHome[rec.HomeID] = append(byHome[rec.HomeID], k)
		}
		if rec.Minute != b.len() {
			return nil, fmt.Errorf("pecan: jsonl line %d: home %d %s minute %d out of order (want %d)",
				line, rec.HomeID, rec.Device, rec.Minute, b.len())
		}
		mode := b.dev.ClassifyMode(rec.KW)
		if rec.Mode != "" {
			m, err := parseMode(rec.Mode)
			if err != nil {
				return nil, fmt.Errorf("pecan: jsonl line %d: %w", line, err)
			}
			mode = m
		}
		if err := b.Add(rec.KW, mode); err != nil {
			return nil, fmt.Errorf("pecan: jsonl line %d: %w", line, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("pecan: reading jsonl: %w", err)
	}
	ds := &Dataset{}
	for _, hid := range order {
		h := homes[hid]
		for _, k := range byHome[hid] {
			tr, err := builders[k].Finish()
			if err != nil {
				return nil, fmt.Errorf("pecan: home %d %s: %w", k.home, k.dev, err)
			}
			h.Traces = append(h.Traces, tr)
		}
		ds.Homes = append(ds.Homes, h)
	}
	if len(ds.Homes) > 0 && len(ds.Homes[0].Traces) > 0 {
		ds.Config.Homes = len(ds.Homes)
		ds.Config.Days = ds.Homes[0].Traces[0].Days()
	}
	return ds, nil
}

// deviceByType looks up a standard device signature by type name.
func deviceByType(devType string) (energy.Device, bool) {
	for _, p := range StandardDevices() {
		if p.Device.Type == devType {
			return p.Device, true
		}
	}
	return energy.Device{}, false
}
