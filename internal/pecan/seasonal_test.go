package pecan

import (
	"testing"

	"repro/internal/energy"
)

func onMinutes(ds *Dataset, devType string) int {
	n := 0
	for _, h := range ds.Homes {
		tr := h.TraceByType(devType)
		if tr == nil {
			continue
		}
		for _, m := range tr.MaterializeModes() {
			if m == energy.On {
				n++
			}
		}
	}
	return n
}

func TestSeasonalModulationHVAC(t *testing.T) {
	// HVAC usage in July must exceed January at the same seed.
	july := Generate(Config{Seed: 4, Homes: 4, Days: 10, StartMonth: 7})
	jan := Generate(Config{Seed: 4, Homes: 4, Days: 10, StartMonth: 1})
	jh, janH := onMinutes(july, "hvac"), onMinutes(jan, "hvac")
	if jh <= janH {
		t.Fatalf("hvac July ON=%d should exceed January ON=%d", jh, janH)
	}
	// Water heater flips: winter demand exceeds summer.
	jw, janW := onMinutes(july, "water_heater"), onMinutes(jan, "water_heater")
	if jw >= janW {
		t.Fatalf("water_heater July ON=%d should undercut January ON=%d", jw, janW)
	}
}

func TestSeasonalityDisabledByDefault(t *testing.T) {
	a := Generate(Config{Seed: 5, Homes: 1, Days: 2})
	b := Generate(Config{Seed: 5, Homes: 1, Days: 2, StartMonth: 0})
	for ti := range a.Homes[0].Traces {
		ta, tb := a.Homes[0].Traces[ti], b.Homes[0].Traces[ti]
		ka, kb := ta.MaterializeKW(), tb.MaterializeKW()
		for i := range ka {
			if ka[i] != kb[i] {
				t.Fatal("StartMonth 0 should be identical to unset")
			}
		}
	}
}

func TestSeasonalUsageBounds(t *testing.T) {
	for m := 1; m <= 12; m++ {
		for day := 0; day < 365; day += 30 {
			for _, dt := range []string{"hvac", "water_heater", "tv"} {
				f := seasonalUsage(dt, m, day)
				if f <= 0 || f > 2.0 {
					t.Fatalf("seasonalUsage(%s, %d, %d) = %v out of bounds", dt, m, day, f)
				}
			}
		}
	}
	if seasonalUsage("tv", 0, 5) != 1 || seasonalUsage("tv", 13, 5) != 1 {
		t.Fatal("invalid month should disable seasonality")
	}
}

func TestVacationDays(t *testing.T) {
	ds := Generate(Config{Seed: 8, Homes: 6, Days: 21, DevicesPerHome: 1, VacationProb: 0.9})
	anyVacation := false
	for _, h := range ds.Homes {
		for d, away := range h.Vacation {
			if !away {
				continue
			}
			anyVacation = true
			// No device usage on away days.
			for _, tr := range h.Traces {
				for _, md := range tr.ModeDayInto(d, nil) {
					if md == energy.On {
						t.Fatalf("home %d device %s ON during vacation day %d", h.ID, tr.Device.Type, d)
					}
				}
			}
		}
	}
	if !anyVacation {
		t.Fatal("VacationProb 0.9 over 3 weeks produced no vacations")
	}
	// Disabled by default.
	plain := Generate(Config{Seed: 8, Homes: 2, Days: 7})
	for _, h := range plain.Homes {
		for _, away := range h.Vacation {
			if away {
				t.Fatal("vacation without VacationProb")
			}
		}
	}
}
