package pecan

import (
	"fmt"
	"math"

	"repro/internal/energy"
	"repro/internal/store"
)

// TraceBuilder streams (kw, mode) samples into a Trace one minute at a
// time, so generation and ingestion never hold more than one decoded day
// per trace: the store-backed path seals a compressed KW block and an RLE
// mode block every MinutesPerDay samples, and the raw path simply appends.
// Quantization (Config.MeterResolutionKW) is applied here, identically for
// both backings, which is what keeps the RawTraces knob bit-exact under
// every configuration.
type TraceBuilder struct {
	dev      energy.Device
	raw      bool
	res      float64
	finished bool

	// Raw backing.
	kw    []float64
	modes []energy.Mode

	// Store backing.
	s        *store.Series
	rle      [][]byte
	dayModes []energy.Mode
}

// NewTraceBuilder starts a trace for one device under cfg's storage knobs.
func NewTraceBuilder(dev energy.Device, cfg Config) *TraceBuilder {
	b := &TraceBuilder{dev: dev, raw: cfg.RawTraces, res: cfg.MeterResolutionKW}
	if !b.raw {
		// Quantized samples sit on the n·res grid by construction (Add
		// rounds onto it), so the store can use its grid block encoding.
		b.s = store.NewSeriesQuantized(MinutesPerDay, cfg.MeterResolutionKW)
		b.dayModes = make([]energy.Mode, 0, MinutesPerDay)
	}
	return b
}

// Reserve hints the expected total sample count (raw backing preallocates).
func (b *TraceBuilder) Reserve(n int) {
	if b.raw && cap(b.kw) < n {
		b.kw = append(make([]float64, 0, n), b.kw...)
		b.modes = append(make([]energy.Mode, 0, n), b.modes...)
	}
}

// Add appends one minute sample. Non-finite kw readings are rejected with
// store.ErrNonFinite before touching any state.
func (b *TraceBuilder) Add(kw float64, m energy.Mode) error {
	if b.finished {
		return fmt.Errorf("pecan: TraceBuilder used after Finish")
	}
	if math.IsNaN(kw) || math.IsInf(kw, 0) {
		return fmt.Errorf("pecan: sample %d: %w", b.len(), store.ErrNonFinite)
	}
	if m < 0 || int(m) >= energy.NumModes {
		return fmt.Errorf("pecan: sample %d: unknown mode %d", b.len(), m)
	}
	if b.res > 0 {
		kw = math.Round(kw/b.res) * b.res
	}
	if b.raw {
		b.kw = append(b.kw, kw)
		b.modes = append(b.modes, m)
		return nil
	}
	if err := b.s.Append(kw); err != nil {
		return err
	}
	b.dayModes = append(b.dayModes, m)
	if len(b.dayModes) == MinutesPerDay {
		b.sealModeDay()
	}
	return nil
}

func (b *TraceBuilder) sealModeDay() {
	b.rle = append(b.rle, appendModeRLE(nil, b.dayModes))
	b.dayModes = b.dayModes[:0]
}

func (b *TraceBuilder) len() int {
	if b.raw {
		return len(b.kw)
	}
	return b.s.Len()
}

// Finish seals any partial final day and returns the built Trace.
func (b *TraceBuilder) Finish() (*Trace, error) {
	if b.finished {
		return nil, fmt.Errorf("pecan: TraceBuilder finished twice")
	}
	b.finished = true
	if b.raw {
		return &Trace{
			Device: b.dev,
			kw:     rawSeries(b.kw),
			modes:  modeStore{raw: b.modes, n: len(b.modes)},
		}, nil
	}
	if len(b.dayModes) > 0 {
		b.sealModeDay()
	}
	b.s.Seal()
	return &Trace{
		Device: b.dev,
		kw:     newStoredSeries(b.s),
		modes:  modeStore{rle: b.rle, n: b.s.Len()},
	}, nil
}
