package pecan

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV throws arbitrary bytes at the Dataport importer and requires
// clean errors, never panics and never pathological allocation, for
// anything that is not a well-formed corpus. Seeds cover a genuine export
// plus the hostile shapes real mangled data takes: truncated rows,
// non-finite readings, out-of-order minutes, unknown modes.
func FuzzReadCSV(f *testing.F) {
	ds := Generate(Config{Seed: 31, Homes: 1, Days: 1, DevicesPerHome: 2})
	var genuine bytes.Buffer
	if err := ds.WriteCSV(&genuine); err != nil {
		f.Fatal(err)
	}
	header := "home_id,archetype,device,minute,kw,mode\n"
	f.Add(genuine.Bytes())
	f.Add([]byte(genuine.String()[:genuine.Len()/2]))
	f.Add([]byte(header))
	f.Add([]byte(header + "0,worker,tv,0,0.1\n"))                 // truncated row
	f.Add([]byte(header + "0,worker,tv,0,NaN,on\n"))              // non-finite reading
	f.Add([]byte(header + "0,worker,tv,0,-Inf,standby\n"))        // non-finite reading
	f.Add([]byte(header + "0,worker,tv,7,0.1,on\n"))              // out-of-order minute
	f.Add([]byte(header + "0,worker,tv,0,0.1,defrosting\n"))      // unknown mode
	f.Add([]byte(header + "99999999999999999999,w,tv,0,0,off\n")) // overflow home_id
	f.Add([]byte{})
	f.Add([]byte("\xff\xfe\x00"))

	f.Fuzz(func(t *testing.T, data []byte) {
		back, err := ReadCSV(bytes.NewReader(data))
		if err != nil {
			return // rejected cleanly, as required
		}
		// Accepted input must yield a self-consistent dataset: every trace
		// readable end to end through the accessors.
		for _, h := range back.Homes {
			for _, tr := range h.Traces {
				if kw := tr.MaterializeKW(); len(kw) != tr.Len() {
					t.Fatalf("trace len %d but %d samples materialized", tr.Len(), len(kw))
				}
				if modes := tr.MaterializeModes(); len(modes) != tr.Len() {
					t.Fatalf("trace len %d but %d modes materialized", tr.Len(), len(modes))
				}
			}
		}
	})
}

// FuzzReadJSONL is the same contract for the JSON-lines importer.
func FuzzReadJSONL(f *testing.F) {
	f.Add(`{"home_id":0,"device":"tv","minute":0,"kw":0.1,"mode":"on"}`)
	f.Add(`{"home_id":0,"device":"tv","minute":0,"kw":0.1}` + "\n" +
		`{"home_id":0,"device":"tv","minute":1,"kw":0.2}`)
	f.Add(`{"home_id":0,"device":"tv","minute":5,"kw":0.1}`)
	f.Add(`{"home_id":0,"device":"tv","minute":0,"kw":"NaN"}`)
	f.Add(`{broken`)
	f.Add("")
	f.Fuzz(func(t *testing.T, s string) {
		ds, err := ReadJSONL(strings.NewReader(s))
		if err != nil {
			return
		}
		for _, h := range ds.Homes {
			for _, tr := range h.Traces {
				if kw := tr.MaterializeKW(); len(kw) != tr.Len() {
					t.Fatalf("trace len %d but %d samples materialized", tr.Len(), len(kw))
				}
			}
		}
	})
}
