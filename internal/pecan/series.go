package pecan

import (
	"encoding/binary"
	"fmt"
	"strconv"

	"repro/internal/energy"
	"repro/internal/store"
)

// Series is the storage behind a Trace's KW samples. Two implementations
// exist: the eager raw slice (the original representation, selected with
// Config.RawTraces) and a lazy decoder over internal/store's compressed
// day blocks (the default). Both return the exact same IEEE-754 bit
// patterns for every sample — the simulation is pinned bit-identical
// across the two backings — so the choice is purely a memory/CPU trade.
//
// Slice lifetime contract: Day reuses a small decoded-day cache, and
// DayWithHistory / Window reuse per-series scratch buffers, so a returned
// slice is valid only until the next call of the same accessor on the same
// trace. DayInto is the stable variant for callers that retain the day
// (environment construction). None of the accessors are safe for
// concurrent use on one trace; distinct traces are fully independent —
// which matches how core's parallel waves shard work.
type Series interface {
	// Len returns the total number of samples.
	Len() int
	// Day returns day d's MinutesPerDay samples. The slice is valid until
	// a later Day call on this series evicts it (raw: aliases, always valid).
	Day(d int) []float64
	// DayInto returns a stable snapshot of day d: the raw backing aliases
	// (its storage never mutates), the store backing decodes into dst
	// (grown as needed). The result survives subsequent accessor calls.
	DayInto(d int, dst []float64) []float64
	// DayWithHistory returns a day-aligned window covering day d plus at
	// least minBack preceding samples (clamped to the series start), and
	// the absolute sample offset of the window's first element. The offset
	// is a multiple of MinutesPerDay, so minute-of-day phase features
	// computed from window-relative indices match absolute ones.
	DayWithHistory(d, minBack int) ([]float64, int)
	// Window materializes samples [start, stop).
	Window(start, stop int) []float64
	// Materialize returns the whole series as one contiguous slice
	// (raw: aliases; store-backed: decodes into dst, grown as needed).
	Materialize(dst []float64) []float64
	// StorageBytes is the resident size of the sample storage.
	StorageBytes() int
}

// rawSeries is the eager representation: one flat slice.
type rawSeries []float64

func (r rawSeries) Len() int                             { return len(r) }
func (r rawSeries) Day(d int) []float64                  { return r[d*MinutesPerDay : (d+1)*MinutesPerDay] }
func (r rawSeries) DayInto(d int, _ []float64) []float64 { return r.Day(d) }
func (r rawSeries) DayWithHistory(d, minBack int) ([]float64, int) {
	// The full series at offset 0 satisfies any history demand and is what
	// pre-store code passed to forecasters; returning it keeps the raw path
	// literally identical to the original call shapes.
	return r, 0
}
func (r rawSeries) Window(start, stop int) []float64  { return r[start:stop] }
func (r rawSeries) Materialize(_ []float64) []float64 { return r }
func (r rawSeries) StorageBytes() int                 { return 8 * len(r) }

// storedSeries lazily decodes day blocks out of a store.Series. The
// two-slot day cache covers the simulation's access pattern (environment
// truth and accuracy collection revisit the same day repeatedly); the
// history and window scratches bound per-trace decoded memory at a few
// days regardless of trace length.
type storedSeries struct {
	s     *store.Series
	cache [2]struct {
		day int
		buf []float64
	}
	next int       // round-robin eviction cursor
	hist []float64 // DayWithHistory scratch
	win  []float64 // Window scratch
}

func newStoredSeries(s *store.Series) *storedSeries {
	ss := &storedSeries{s: s}
	ss.cache[0].day = -1
	ss.cache[1].day = -1
	return ss
}

func (ss *storedSeries) Len() int { return ss.s.Len() }

func (ss *storedSeries) Day(d int) []float64 {
	for i := range ss.cache {
		if ss.cache[i].day == d {
			return ss.cache[i].buf
		}
	}
	slot := &ss.cache[ss.next]
	ss.next = (ss.next + 1) % len(ss.cache)
	out, err := ss.s.DecodeBlockInto(d, slot.buf)
	if err != nil {
		panic(fmt.Sprintf("pecan: day %d decode failed on self-encoded series: %v", d, err))
	}
	slot.day, slot.buf = d, out
	return out
}

func (ss *storedSeries) DayInto(d int, dst []float64) []float64 {
	for i := range ss.cache {
		if ss.cache[i].day == d {
			src := ss.cache[i].buf
			if cap(dst) < len(src) {
				dst = make([]float64, len(src))
			}
			dst = dst[:len(src)]
			copy(dst, src)
			return dst
		}
	}
	out, err := ss.s.DecodeBlockInto(d, dst)
	if err != nil {
		panic(fmt.Sprintf("pecan: day %d decode failed on self-encoded series: %v", d, err))
	}
	return out
}

// materializeRange decodes blocks [fromBlock, toBlock) contiguously into
// dst (grown as needed). Fixed stride makes the layout arithmetic: block b
// starts at (b-fromBlock)*MinutesPerDay within dst.
func (ss *storedSeries) materializeRange(fromBlock, toBlock int, dst []float64) []float64 {
	need := 0
	for b := fromBlock; b < toBlock; b++ {
		need += ss.s.BlockSamples(b)
	}
	if cap(dst) < need {
		dst = make([]float64, need)
	}
	dst = dst[:need]
	off := 0
	for b := fromBlock; b < toBlock; b++ {
		cnt := ss.s.BlockSamples(b)
		if _, err := ss.s.DecodeBlockInto(b, dst[off:off:off+cnt]); err != nil {
			panic(fmt.Sprintf("pecan: block %d decode failed on self-encoded series: %v", b, err))
		}
		off += cnt
	}
	return dst
}

func (ss *storedSeries) DayWithHistory(d, minBack int) ([]float64, int) {
	backDays := 0
	if minBack > 0 {
		backDays = (minBack + MinutesPerDay - 1) / MinutesPerDay
	}
	from := d - backDays
	if from < 0 {
		from = 0
	}
	ss.hist = ss.materializeRange(from, d+1, ss.hist)
	return ss.hist, from * MinutesPerDay
}

func (ss *storedSeries) Window(start, stop int) []float64 {
	if start >= stop {
		return nil
	}
	from := start / MinutesPerDay
	to := (stop-1)/MinutesPerDay + 1
	ss.win = ss.materializeRange(from, to, ss.win)
	base := from * MinutesPerDay
	return ss.win[start-base : stop-base]
}

func (ss *storedSeries) Materialize(dst []float64) []float64 {
	return ss.materializeRange(0, ss.s.NumBlocks(), dst)
}

func (ss *storedSeries) StorageBytes() int { return ss.s.CompressedBytes() }

// modeBytes is the resident size of one energy.Mode (a Go int).
const modeBytes = strconv.IntSize / 8

// modeStore holds a trace's ground-truth mode labels in the representation
// matching its KW backing: a flat slice for raw traces, or per-day
// run-length blocks for store-backed traces (modes are three-valued and
// extremely runny — a day is typically a handful of (mode, run) pairs, so
// RLE keeps the 8-bytes-per-sample labels from dominating resident memory
// once the KW samples are compressed).
type modeStore struct {
	raw []energy.Mode
	rle [][]byte
	n   int
}

// appendModeRLE encodes one day of modes as (mode byte, uvarint run) pairs.
func appendModeRLE(dst []byte, modes []energy.Mode) []byte {
	var tmp [binary.MaxVarintLen64]byte
	for i := 0; i < len(modes); {
		m := modes[i]
		j := i + 1
		for j < len(modes) && modes[j] == m {
			j++
		}
		dst = append(dst, byte(m))
		n := binary.PutUvarint(tmp[:], uint64(j-i))
		dst = append(dst, tmp[:n]...)
		i = j
	}
	return dst
}

// decodeModeRLE expands one RLE day block into dst, which must hold
// exactly want samples when done.
func decodeModeRLE(block []byte, dst []energy.Mode, want int) ([]energy.Mode, error) {
	if cap(dst) < want {
		dst = make([]energy.Mode, want)
	}
	dst = dst[:want]
	i := 0
	for off := 0; off < len(block); {
		m := energy.Mode(block[off])
		if m < 0 || int(m) >= energy.NumModes {
			return nil, fmt.Errorf("pecan: mode block carries unknown mode %d", m)
		}
		run, n := binary.Uvarint(block[off+1:])
		if n <= 0 || run == 0 || i+int(run) > want {
			return nil, fmt.Errorf("pecan: mode block run corrupt at byte %d", off)
		}
		off += 1 + n
		for j := 0; j < int(run); j++ {
			dst[i+j] = m
		}
		i += int(run)
	}
	if i != want {
		return nil, fmt.Errorf("pecan: mode block holds %d samples, want %d", i, want)
	}
	return dst, nil
}

func (ms *modeStore) len() int { return ms.n }

// dayInto returns day d's modes, decoding into dst for RLE storage
// (raw storage aliases).
func (ms *modeStore) dayInto(d int, dst []energy.Mode) []energy.Mode {
	if ms.raw != nil {
		return ms.raw[d*MinutesPerDay : (d+1)*MinutesPerDay]
	}
	want := MinutesPerDay
	if last := d == len(ms.rle)-1; last && ms.n%MinutesPerDay != 0 {
		want = ms.n % MinutesPerDay
	}
	out, err := decodeModeRLE(ms.rle[d], dst, want)
	if err != nil {
		panic(fmt.Sprintf("pecan: day %d mode decode failed on self-encoded trace: %v", d, err))
	}
	return out
}

// materialize expands the whole label series (raw storage aliases).
func (ms *modeStore) materialize(dst []energy.Mode) []energy.Mode {
	if ms.raw != nil {
		return ms.raw
	}
	if cap(dst) < ms.n {
		dst = make([]energy.Mode, ms.n)
	}
	dst = dst[:ms.n]
	off := 0
	for d := range ms.rle {
		want := MinutesPerDay
		if off+want > ms.n {
			want = ms.n - off
		}
		if _, err := decodeModeRLE(ms.rle[d], dst[off:off:off+want], want); err != nil {
			panic(fmt.Sprintf("pecan: day %d mode decode failed on self-encoded trace: %v", d, err))
		}
		off += want
	}
	return dst
}

func (ms *modeStore) storageBytes() int {
	if ms.raw != nil {
		return modeBytes * len(ms.raw)
	}
	total := 0
	for _, b := range ms.rle {
		total += len(b)
	}
	return total
}
