package pecan

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"repro/internal/energy"
)

// WriteCSV emits the dataset in a long format close to Pecan Street
// Dataport exports: one row per (home, device, minute) with the kW reading
// and ground-truth mode label.
//
//	home_id,archetype,device,minute,kw,mode
func (ds *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	defer cw.Flush()
	if err := cw.Write([]string{"home_id", "archetype", "device", "minute", "kw", "mode"}); err != nil {
		return err
	}
	for _, h := range ds.Homes {
		for _, tr := range h.Traces {
			for i, kw := range tr.KW {
				rec := []string{
					strconv.Itoa(h.ID),
					h.Archetype.Name,
					tr.Device.Type,
					strconv.Itoa(i),
					strconv.FormatFloat(kw, 'g', -1, 64),
					tr.TrueModes[i].String(),
				}
				if err := cw.Write(rec); err != nil {
					return err
				}
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a corpus written by WriteCSV. Device electrical signatures
// are looked up from the standard library by type name.
func ReadCSV(r io.Reader) (*Dataset, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("pecan: reading CSV header: %w", err)
	}
	if len(header) != 6 || header[0] != "home_id" {
		return nil, fmt.Errorf("pecan: unexpected CSV header %v", header)
	}
	devByType := map[string]energy.Device{}
	for _, p := range StandardDevices() {
		devByType[p.Device.Type] = p.Device
	}
	homes := map[int]*Home{}
	var order []int
	type key struct {
		home int
		dev  string
	}
	traces := map[key]*Trace{}
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("pecan: reading CSV: %w", err)
		}
		hid, err := strconv.Atoi(rec[0])
		if err != nil {
			return nil, fmt.Errorf("pecan: bad home_id %q: %w", rec[0], err)
		}
		kw, err := strconv.ParseFloat(rec[4], 64)
		if err != nil {
			return nil, fmt.Errorf("pecan: bad kw %q: %w", rec[4], err)
		}
		mode, err := parseMode(rec[5])
		if err != nil {
			return nil, err
		}
		h, ok := homes[hid]
		if !ok {
			h = &Home{ID: hid, Archetype: Archetype{Name: rec[1]}}
			homes[hid] = h
			order = append(order, hid)
		}
		k := key{hid, rec[2]}
		tr, ok := traces[k]
		if !ok {
			dev, found := devByType[rec[2]]
			if !found {
				dev = energy.Device{Type: rec[2], StandbyKW: 0.005, OnKW: 0.1}
			}
			tr = &Trace{Device: dev}
			traces[k] = tr
			h.Traces = append(h.Traces, tr)
		}
		tr.KW = append(tr.KW, kw)
		tr.TrueModes = append(tr.TrueModes, mode)
	}
	ds := &Dataset{}
	for _, hid := range order {
		ds.Homes = append(ds.Homes, homes[hid])
	}
	if len(ds.Homes) > 0 && len(ds.Homes[0].Traces) > 0 {
		ds.Config.Homes = len(ds.Homes)
		ds.Config.Days = ds.Homes[0].Traces[0].Days()
	}
	return ds, nil
}

func parseMode(s string) (energy.Mode, error) {
	switch s {
	case "off":
		return energy.Off, nil
	case "standby":
		return energy.Standby, nil
	case "on":
		return energy.On, nil
	default:
		return 0, fmt.Errorf("pecan: unknown mode %q", s)
	}
}
