package pecan

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"repro/internal/energy"
)

// WriteCSV emits the dataset in a long format close to Pecan Street
// Dataport exports: one row per (home, device, minute) with the kW reading
// and ground-truth mode label.
//
//	home_id,archetype,device,minute,kw,mode
func (ds *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"home_id", "archetype", "device", "minute", "kw", "mode"}); err != nil {
		return err
	}
	// Per-trace materialization scratch, reused so store-backed corpora
	// stream out at one decoded trace of transient memory.
	var kwBuf []float64
	var modeBuf []energy.Mode
	for _, h := range ds.Homes {
		for _, tr := range h.Traces {
			kw := tr.kw.Materialize(kwBuf)
			modes := tr.modes.materialize(modeBuf)
			for i, v := range kw {
				rec := []string{
					strconv.Itoa(h.ID),
					h.Archetype.Name,
					tr.Device.Type,
					strconv.Itoa(i),
					strconv.FormatFloat(v, 'g', -1, 64),
					modes[i].String(),
				}
				if err := cw.Write(rec); err != nil {
					return err
				}
			}
			if tr.modes.raw == nil {
				kwBuf, modeBuf = kw, modes
			}
		}
	}
	// One final flush, then surface the writer's sticky error — a deferred
	// second Flush would swallow short writes on a full disk.
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a corpus written by WriteCSV (or exported Dataport-shaped
// data in the same long format), streaming every (home, device) series
// straight into compressed day blocks — the raw samples are never
// materialized corpus-wide. Device electrical signatures are looked up
// from the standard library by type name.
//
// The reader is strict about the things hostile or mangled exports get
// wrong: rows must carry exactly the header's 6 fields, each trace's
// minute column must count 0,1,2,... in order (interleaving across traces
// is fine), kW readings must be finite, and mode labels must be known.
func ReadCSV(r io.Reader) (*Dataset, error) {
	return readCSVAs(r, Config{})
}

// readCSVAs is ReadCSV with storage knobs (tests import both backings).
func readCSVAs(r io.Reader, cfg Config) (*Dataset, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("pecan: reading CSV header: %w", err)
	}
	if len(header) != 6 || header[0] != "home_id" {
		return nil, fmt.Errorf("pecan: unexpected CSV header %v", header)
	}
	devByType := map[string]energy.Device{}
	for _, p := range StandardDevices() {
		devByType[p.Device.Type] = p.Device
	}
	homes := map[int]*Home{}
	var order []int
	type key struct {
		home int
		dev  string
	}
	builders := map[key]*TraceBuilder{}
	var keys []key
	byHome := map[int][]key{}
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		line++
		if err != nil {
			return nil, fmt.Errorf("pecan: reading CSV: %w", err)
		}
		hid, err := strconv.Atoi(rec[0])
		if err != nil {
			return nil, fmt.Errorf("pecan: line %d: bad home_id %q: %w", line, rec[0], err)
		}
		minute, err := strconv.Atoi(rec[3])
		if err != nil {
			return nil, fmt.Errorf("pecan: line %d: bad minute %q: %w", line, rec[3], err)
		}
		kw, err := strconv.ParseFloat(rec[4], 64)
		if err != nil {
			return nil, fmt.Errorf("pecan: line %d: bad kw %q: %w", line, rec[4], err)
		}
		mode, err := parseMode(rec[5])
		if err != nil {
			return nil, fmt.Errorf("pecan: line %d: %w", line, err)
		}
		h, ok := homes[hid]
		if !ok {
			h = &Home{ID: hid, Archetype: Archetype{Name: rec[1]}}
			homes[hid] = h
			order = append(order, hid)
		}
		k := key{hid, rec[2]}
		b, ok := builders[k]
		if !ok {
			dev, found := devByType[rec[2]]
			if !found {
				dev = energy.Device{Type: rec[2], StandbyKW: 0.005, OnKW: 0.1}
			}
			b = NewTraceBuilder(dev, cfg)
			builders[k] = b
			keys = append(keys, k)
			byHome[hid] = append(byHome[hid], k)
		}
		// The fixed-stride store has no per-sample timestamps; the minute
		// column must therefore count each trace's samples contiguously.
		if minute != b.len() {
			return nil, fmt.Errorf("pecan: line %d: home %d %s minute %d out of order (want %d)",
				line, hid, rec[2], minute, b.len())
		}
		if err := b.Add(kw, mode); err != nil {
			return nil, fmt.Errorf("pecan: line %d: %w", line, err)
		}
	}
	ds := &Dataset{Config: cfg}
	for _, hid := range order {
		h := homes[hid]
		for _, k := range byHome[hid] {
			tr, err := builders[k].Finish()
			if err != nil {
				return nil, fmt.Errorf("pecan: home %d %s: %w", k.home, k.dev, err)
			}
			h.Traces = append(h.Traces, tr)
		}
		ds.Homes = append(ds.Homes, h)
	}
	if len(ds.Homes) > 0 && len(ds.Homes[0].Traces) > 0 {
		ds.Config.Homes = len(ds.Homes)
		ds.Config.Days = ds.Homes[0].Traces[0].Days()
	}
	return ds, nil
}

func parseMode(s string) (energy.Mode, error) {
	switch s {
	case "off":
		return energy.Off, nil
	case "standby":
		return energy.Standby, nil
	case "on":
		return energy.On, nil
	default:
		return 0, fmt.Errorf("pecan: unknown mode %q", s)
	}
}
