package pecan

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/energy"
)

func TestGenerateShape(t *testing.T) {
	ds := Generate(Config{Seed: 1, Homes: 3, Days: 2})
	if len(ds.Homes) != 3 {
		t.Fatalf("homes = %d", len(ds.Homes))
	}
	lib := len(StandardDevices())
	for _, h := range ds.Homes {
		if len(h.Traces) != lib {
			t.Fatalf("home %d has %d traces, want %d", h.ID, len(h.Traces), lib)
		}
		for _, tr := range h.Traces {
			if tr.Len() != 2*MinutesPerDay || len(tr.MaterializeModes()) != 2*MinutesPerDay {
				t.Fatalf("trace length %d, want %d", tr.Len(), 2*MinutesPerDay)
			}
			if tr.Days() != 2 {
				t.Fatalf("Days() = %d", tr.Days())
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{Seed: 42, Homes: 2, Days: 1})
	b := Generate(Config{Seed: 42, Homes: 2, Days: 1})
	for hi := range a.Homes {
		for ti := range a.Homes[hi].Traces {
			ta, tb := a.Homes[hi].Traces[ti], b.Homes[hi].Traces[ti]
			ka, kb := ta.MaterializeKW(), tb.MaterializeKW()
			ma, mb := ta.MaterializeModes(), tb.MaterializeModes()
			for i := range ka {
				if ka[i] != kb[i] || ma[i] != mb[i] {
					t.Fatalf("non-deterministic at home %d trace %d idx %d", hi, ti, i)
				}
			}
		}
	}
	c := Generate(Config{Seed: 43, Homes: 2, Days: 1})
	ka, kc := a.Homes[0].Traces[0].MaterializeKW(), c.Homes[0].Traces[0].MaterializeKW()
	same := true
	for i := range ka {
		if ka[i] != kc[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestDevicesPerHomeLimit(t *testing.T) {
	ds := Generate(Config{Seed: 1, Homes: 1, Days: 1, DevicesPerHome: 3})
	if len(ds.Homes[0].Traces) != 3 {
		t.Fatalf("traces = %d, want 3", len(ds.Homes[0].Traces))
	}
	if got := len(ds.DeviceTypes()); got != 3 {
		t.Fatalf("DeviceTypes = %d", got)
	}
}

// TestClassificationMatchesGroundTruth is the contract between generator
// and pipeline: the noisy readings must classify back to the true modes via
// the paper's band rule.
func TestClassificationMatchesGroundTruth(t *testing.T) {
	ds := Generate(Config{Seed: 7, Homes: 2, Days: 2})
	for _, h := range ds.Homes {
		for _, tr := range h.Traces {
			kw := tr.MaterializeKW()
			got := tr.Device.ClassifySeries(kw)
			for i, m := range tr.MaterializeModes() {
				if got[i] != m {
					t.Fatalf("home %d %s minute %d: classified %v, truth %v (kw=%v)",
						h.ID, tr.Device.Type, i, got[i], m, kw[i])
				}
			}
		}
	}
}

func TestAllThreeModesPresent(t *testing.T) {
	ds := Generate(Config{Seed: 11, Homes: 4, Days: 7})
	var seen [3]bool
	for _, h := range ds.Homes {
		for _, tr := range h.Traces {
			for _, m := range tr.MaterializeModes() {
				seen[m] = true
			}
		}
	}
	if !seen[energy.Off] || !seen[energy.Standby] || !seen[energy.On] {
		t.Fatalf("modes present = %v, want all three", seen)
	}
}

func TestStandbyDominatesIdleTime(t *testing.T) {
	// Standby should be the most common mode — that's the premise of the
	// paper (devices mostly wait for commands).
	ds := Generate(Config{Seed: 3, Homes: 2, Days: 3})
	counts := map[energy.Mode]int{}
	for _, h := range ds.Homes {
		for _, tr := range h.Traces {
			for _, m := range tr.MaterializeModes() {
				counts[m]++
			}
		}
	}
	if counts[energy.Standby] <= counts[energy.On] || counts[energy.Standby] <= counts[energy.Off] {
		t.Fatalf("standby not dominant: %v", counts)
	}
}

func TestDiurnalStructure(t *testing.T) {
	// Usage (On minutes) must concentrate in daytime/evening vs deep night.
	ds := Generate(Config{Seed: 5, Homes: 6, Days: 14})
	var nightOn, eveningOn int
	for _, h := range ds.Homes {
		for _, tr := range h.Traces {
			for i, m := range tr.MaterializeModes() {
				if m != energy.On {
					continue
				}
				minute := i % MinutesPerDay
				switch {
				case minute >= 2*60 && minute < 5*60:
					nightOn++
				case minute >= 18*60 && minute < 21*60:
					eveningOn++
				}
			}
		}
	}
	if eveningOn < 5*nightOn {
		t.Fatalf("no diurnal structure: night ON=%d evening ON=%d", nightOn, eveningOn)
	}
}

func TestNonIIDAcrossArchetypes(t *testing.T) {
	// Homes with different archetypes must differ in their usage timing:
	// compare the per-minute ON histogram of a night_owl vs an early_riser.
	ds := Generate(Config{Seed: 9, Homes: 4, Days: 30})
	onCenter := func(h *Home) float64 {
		sum, n := 0.0, 0
		for _, tr := range h.Traces {
			for i, m := range tr.MaterializeModes() {
				if m == energy.On {
					sum += float64(i % MinutesPerDay)
					n++
				}
			}
		}
		if n == 0 {
			return 0
		}
		return sum / float64(n)
	}
	var early, owl *Home
	for _, h := range ds.Homes {
		switch h.Archetype.Name {
		case "early_riser":
			early = h
		case "night_owl":
			owl = h
		}
	}
	if early == nil || owl == nil {
		t.Fatal("archetypes missing from 4-home corpus")
	}
	if onCenter(owl)-onCenter(early) < 30 {
		t.Fatalf("archetypes not separated: early center %.0f, owl center %.0f",
			onCenter(early), onCenter(owl))
	}
}

func TestSplitTrainTest(t *testing.T) {
	ds := Generate(Config{Seed: 1, Homes: 1, Days: 10, DevicesPerHome: 1})
	tr := ds.Homes[0].Traces[0]
	train, test := tr.SplitTrainTest(0.8)
	if len(train) != 8*MinutesPerDay || len(test) != 2*MinutesPerDay {
		t.Fatalf("split sizes %d/%d", len(train), len(test))
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("split with frac 0 did not panic")
			}
		}()
		tr.SplitTrainTest(0)
	}()
}

func TestSplitNeverEmpty(t *testing.T) {
	ds := Generate(Config{Seed: 1, Homes: 1, Days: 1, DevicesPerHome: 1})
	tr := ds.Homes[0].Traces[0]
	train, test := tr.SplitTrainTest(0.99)
	if len(train) == 0 || len(test) == 0 {
		t.Fatalf("degenerate split %d/%d", len(train), len(test))
	}
}

func TestTraceByTypeAndTotals(t *testing.T) {
	ds := Generate(Config{Seed: 1, Homes: 1, Days: 1})
	if ds.Homes[0].TraceByType("tv") == nil {
		t.Fatal("tv trace missing")
	}
	if ds.Homes[0].TraceByType("nonexistent") != nil {
		t.Fatal("nonexistent trace found")
	}
	if ds.TotalStandbyKWh() <= 0 {
		t.Fatal("no standby energy in corpus")
	}
}

func TestStandardDevicesValid(t *testing.T) {
	for _, p := range StandardDevices() {
		if err := p.Device.Validate(); err != nil {
			t.Fatalf("library device invalid: %v", err)
		}
		if len(p.Windows) == 0 {
			t.Fatalf("device %s has no usage windows", p.Device.Type)
		}
		for _, w := range p.Windows {
			if w.StartMin < 0 || w.EndMin > MinutesPerDay || w.StartMin >= w.EndMin {
				t.Fatalf("device %s has bad window %+v", p.Device.Type, w)
			}
		}
	}
}

// TestCSVRoundTrip pins the importer end to end: a generated corpus written
// with WriteCSV and re-ingested with ReadCSV must carry bit-identical KW
// samples and mode labels, even though the reader re-compresses every trace
// into day blocks as it streams.
func TestCSVRoundTrip(t *testing.T) {
	ds := Generate(Config{Seed: 2, Homes: 2, Days: 1, DevicesPerHome: 2})
	var buf bytes.Buffer
	if err := ds.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Homes) != 2 {
		t.Fatalf("round-trip homes = %d", len(back.Homes))
	}
	for hi, h := range ds.Homes {
		bh := back.Homes[hi]
		if bh.Archetype.Name != h.Archetype.Name {
			t.Fatalf("archetype mismatch %q vs %q", bh.Archetype.Name, h.Archetype.Name)
		}
		for ti, tr := range h.Traces {
			btr := bh.Traces[ti]
			if btr.Device.Type != tr.Device.Type {
				t.Fatalf("device order changed")
			}
			kw, bkw := tr.MaterializeKW(), btr.MaterializeKW()
			modes, bmodes := tr.MaterializeModes(), btr.MaterializeModes()
			if len(bkw) != len(kw) {
				t.Fatalf("round-trip length %d, want %d", len(bkw), len(kw))
			}
			for i := range kw {
				if kw[i] != bkw[i] || modes[i] != bmodes[i] {
					t.Fatalf("CSV round-trip mismatch home %d trace %d idx %d", hi, ti, i)
				}
			}
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(bytes.NewBufferString("bad,header\n")); err == nil {
		t.Fatal("bad header accepted")
	}
	good := "home_id,archetype,device,minute,kw,mode\n"
	if _, err := ReadCSV(bytes.NewBufferString(good + "x,worker,tv,0,0.1,on\n")); err == nil {
		t.Fatal("bad home_id accepted")
	}
	if _, err := ReadCSV(bytes.NewBufferString(good + "0,worker,tv,0,oops,on\n")); err == nil {
		t.Fatal("bad kw accepted")
	}
	if _, err := ReadCSV(bytes.NewBufferString(good + "0,worker,tv,0,0.1,sleeping\n")); err == nil {
		t.Fatal("bad mode accepted")
	}
	if _, err := ReadCSV(bytes.NewBufferString(good + "0,worker,tv,5,0.1,on\n")); err == nil {
		t.Fatal("out-of-order minute accepted")
	}
	if _, err := ReadCSV(bytes.NewBufferString(good + "0,worker,tv,0,NaN,on\n")); err == nil {
		t.Fatal("NaN reading accepted")
	}
	if _, err := ReadCSV(bytes.NewBufferString(good + "0,worker,tv,0,+Inf,on\n")); err == nil {
		t.Fatal("Inf reading accepted")
	}
}

func TestPropKWNonNegativeAndBounded(t *testing.T) {
	f := func(seed int64) bool {
		ds := Generate(Config{Seed: seed, Homes: 1, Days: 1, DevicesPerHome: 2})
		for _, tr := range ds.Homes[0].Traces {
			limit := tr.Device.OnKW * 1.1
			for _, kw := range tr.MaterializeKW() {
				if kw < 0 || kw > limit {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
