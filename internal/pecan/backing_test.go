package pecan

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/energy"
)

// assertTracesBitIdentical compares every sample and label of two traces
// through the public accessors, bit for bit.
func assertTracesBitIdentical(t *testing.T, label string, a, b *Trace) {
	t.Helper()
	if a.Len() != b.Len() {
		t.Fatalf("%s: length %d vs %d", label, a.Len(), b.Len())
	}
	ka, kb := a.MaterializeKW(), b.MaterializeKW()
	ma, mb := a.MaterializeModes(), b.MaterializeModes()
	for i := range ka {
		if ka[i] != kb[i] {
			t.Fatalf("%s: kw[%d] = %v vs %v", label, i, ka[i], kb[i])
		}
		if ma[i] != mb[i] {
			t.Fatalf("%s: mode[%d] = %v vs %v", label, i, ma[i], mb[i])
		}
	}
}

// TestBackingEquivalence is the storage tentpole's core guarantee at the
// pecan layer: the store-backed default and RawTraces produce bit-identical
// corpora, with and without meter quantization, and the per-day accessors
// agree with the materialized view.
func TestBackingEquivalence(t *testing.T) {
	for _, res := range []float64{0, 0.001} {
		base := Config{Seed: 21, Homes: 3, Days: 3, DevicesPerHome: 2, VacationProb: 0.5, MeterResolutionKW: res}
		raw := base
		raw.RawTraces = true
		dsStore, dsRaw := Generate(base), Generate(raw)
		for hi := range dsStore.Homes {
			for ti := range dsStore.Homes[hi].Traces {
				st, rw := dsStore.Homes[hi].Traces[ti], dsRaw.Homes[hi].Traces[ti]
				assertTracesBitIdentical(t, "generate", st, rw)
				for d := 0; d < st.Days(); d++ {
					sd, rd := st.Day(d), rw.Day(d)
					for i := range sd {
						if sd[i] != rd[i] {
							t.Fatalf("day %d minute %d: %v vs %v (res=%v)", d, i, sd[i], rd[i], res)
						}
					}
				}
			}
		}
		if dsStore.StorageBytes() >= dsRaw.StorageBytes() {
			t.Fatalf("store backing not smaller: %d vs %d bytes (res=%v)",
				dsStore.StorageBytes(), dsRaw.StorageBytes(), res)
		}
	}
}

// TestDayAccessorsAgree exercises the lazy decoder's cache and scratch paths
// against the materialized truth, including interleaved eviction.
func TestDayAccessorsAgree(t *testing.T) {
	ds := Generate(Config{Seed: 6, Homes: 1, Days: 5, DevicesPerHome: 1})
	tr := ds.Homes[0].Traces[0]
	whole := append([]float64(nil), tr.MaterializeKW()...)

	// Interleave day reads so the 2-slot cache evicts.
	for _, d := range []int{0, 3, 1, 4, 0, 2, 4, 1} {
		day := tr.Day(d)
		for i, v := range day {
			if v != whole[d*MinutesPerDay+i] {
				t.Fatalf("Day(%d)[%d] = %v, want %v", d, i, v, whole[d*MinutesPerDay+i])
			}
		}
	}

	// DayInto must survive later accessor calls.
	snap := tr.DayInto(2, nil)
	tr.Day(0)
	tr.Day(1)
	tr.Day(3)
	for i, v := range snap {
		if v != whole[2*MinutesPerDay+i] {
			t.Fatalf("DayInto snapshot clobbered at %d", i)
		}
	}

	// Windows across block boundaries.
	for _, w := range [][2]int{{0, 1}, {100, 1440}, {1439, 1441}, {1000, 4000}, {0, 5 * MinutesPerDay}} {
		got := tr.Window(w[0], w[1])
		if len(got) != w[1]-w[0] {
			t.Fatalf("Window(%d,%d) length %d", w[0], w[1], len(got))
		}
		for i, v := range got {
			if v != whole[w[0]+i] {
				t.Fatalf("Window(%d,%d)[%d] = %v, want %v", w[0], w[1], i, v, whole[w[0]+i])
			}
		}
	}

	// DayWithHistory: day-aligned offset, covers the demanded lookback.
	for _, c := range []struct{ d, back int }{{0, 0}, {0, 500}, {2, 1440}, {4, 3000}, {3, 1}} {
		series, off := tr.DayWithHistory(c.d, c.back)
		if off%MinutesPerDay != 0 {
			t.Fatalf("DayWithHistory(%d,%d) offset %d not day-aligned", c.d, c.back, off)
		}
		start := c.d*MinutesPerDay - c.back
		if start < 0 {
			start = 0
		}
		if off > start {
			t.Fatalf("DayWithHistory(%d,%d) offset %d misses lookback to %d", c.d, c.back, off, start)
		}
		if off+len(series) < (c.d+1)*MinutesPerDay {
			t.Fatalf("DayWithHistory(%d,%d) window ends at %d, day ends at %d",
				c.d, c.back, off+len(series), (c.d+1)*MinutesPerDay)
		}
		for i, v := range series {
			if v != whole[off+i] {
				t.Fatalf("DayWithHistory(%d,%d)[%d] = %v, want %v", c.d, c.back, i, v, whole[off+i])
			}
		}
	}
}

// TestMeterResolutionQuantizes checks the quantization knob actually snaps
// readings to the grid and shrinks storage.
func TestMeterResolutionQuantizes(t *testing.T) {
	full := Generate(Config{Seed: 13, Homes: 1, Days: 2, DevicesPerHome: 2})
	quant := Generate(Config{Seed: 13, Homes: 1, Days: 2, DevicesPerHome: 2, MeterResolutionKW: 0.001})
	for ti := range quant.Homes[0].Traces {
		for _, v := range quant.Homes[0].Traces[ti].MaterializeKW() {
			snapped := float64(int64(v*1000+0.5)) / 1000
			if v < 0 || v-snapped > 1e-12 || snapped-v > 1e-12 {
				t.Fatalf("reading %v not on 1 W grid", v)
			}
		}
	}
	if q, f := quant.StorageBytes(), full.StorageBytes(); q >= f {
		t.Fatalf("quantized corpus should compress better: %d vs %d bytes", q, f)
	}
}

func TestTraceBuilderRejectsBadSamples(t *testing.T) {
	dev := StandardDevices()[0].Device
	for _, raw := range []bool{false, true} {
		b := NewTraceBuilder(dev, Config{RawTraces: raw})
		if err := b.Add(nan(), energy.On); err == nil {
			t.Fatalf("raw=%v: NaN accepted", raw)
		}
		if err := b.Add(0.1, energy.Mode(7)); err == nil {
			t.Fatalf("raw=%v: unknown mode accepted", raw)
		}
		if err := b.Add(0.1, energy.On); err != nil {
			t.Fatalf("raw=%v: good sample rejected after bad ones: %v", raw, err)
		}
		tr, err := b.Finish()
		if err != nil {
			t.Fatal(err)
		}
		if tr.Len() != 1 {
			t.Fatalf("raw=%v: rejected samples leaked into trace (len %d)", raw, tr.Len())
		}
		if err := b.Add(0.1, energy.On); err == nil {
			t.Fatalf("raw=%v: Add after Finish accepted", raw)
		}
		if _, err := b.Finish(); err == nil {
			t.Fatalf("raw=%v: double Finish accepted", raw)
		}
	}
}

func nan() float64 {
	z := 0.0
	return z / z
}

// TestReadJSONL covers the Dataport-shaped JSONL path: explicit modes,
// classifier-derived modes, and the hardening errors.
func TestReadJSONL(t *testing.T) {
	input := strings.Join([]string{
		`{"home_id":4,"archetype":"worker","device":"tv","minute":0,"kw":0.1,"mode":"on"}`,
		`{"home_id":4,"archetype":"worker","device":"tv","minute":1,"kw":0.005}`,
		``,
		`{"home_id":7,"device":"mystery","minute":0,"kw":0.0,"mode":"off"}`,
		`{"home_id":4,"archetype":"worker","device":"tv","minute":2,"kw":0.0}`,
	}, "\n")
	ds, err := ReadJSONL(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Homes) != 2 || ds.Homes[0].ID != 4 || ds.Homes[1].ID != 7 {
		t.Fatalf("homes parsed wrong: %+v", ds.Homes)
	}
	tv := ds.Homes[0].TraceByType("tv")
	if tv == nil || tv.Len() != 3 {
		t.Fatal("tv trace missing or wrong length")
	}
	modes := tv.MaterializeModes()
	// Minute 1 and 2 had no label: 0.005 kW sits in the tv's standby band,
	// 0 kW is off — the classifier must have filled them in.
	want := []energy.Mode{energy.On, energy.Standby, energy.Off}
	for i, m := range want {
		if modes[i] != m {
			t.Fatalf("mode[%d] = %v, want %v", i, modes[i], m)
		}
	}
	if ds.Homes[1].Traces[0].Device.Type != "mystery" {
		t.Fatal("unknown device type lost")
	}

	for name, bad := range map[string]string{
		"garbage":       `not json`,
		"out of order":  `{"home_id":0,"device":"tv","minute":3,"kw":0.1}`,
		"bad kw":        `{"home_id":0,"device":"tv","minute":0,"kw":"oops"}`,
		"overflow kw":   `{"home_id":0,"device":"tv","minute":0,"kw":1e999}`,
		"unknown mode":  `{"home_id":0,"device":"tv","minute":0,"kw":0.1,"mode":"sleeping"}`,
		"oversize line": `{"home_id":0,"device":"` + strings.Repeat("x", maxJSONLLine) + `","minute":0,"kw":0.1}`,
	} {
		if _, err := ReadJSONL(strings.NewReader(bad)); err == nil {
			t.Fatalf("%s accepted", name)
		}
	}
}

// TestImportedCorpusSimulatable: an imported corpus must expose the same
// accessor surface generation does — days, windows, history — so core can
// simulate straight off ingested real data.
func TestImportedCorpusSimulatable(t *testing.T) {
	src := Generate(Config{Seed: 5, Homes: 2, Days: 2, DevicesPerHome: 2})
	var buf bytes.Buffer
	if err := src.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	ds, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Config.Homes != 2 || ds.Config.Days != 2 {
		t.Fatalf("imported config %+v", ds.Config)
	}
	for _, h := range ds.Homes {
		for _, tr := range h.Traces {
			if tr.Days() != 2 {
				t.Fatalf("imported trace has %d days", tr.Days())
			}
			series, off := tr.DayWithHistory(1, 60)
			if off%MinutesPerDay != 0 || off+len(series) < 2*MinutesPerDay {
				t.Fatalf("imported DayWithHistory broken: off=%d len=%d", off, len(series))
			}
			if got := len(tr.Window(MinutesPerDay-30, MinutesPerDay+30)); got != 60 {
				t.Fatalf("imported Window length %d", got)
			}
		}
	}
}
