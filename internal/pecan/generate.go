package pecan

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/energy"
)

// MinutesPerDay is the trace resolution: one sample per minute.
const MinutesPerDay = 24 * 60

// Config controls corpus generation.
type Config struct {
	// Seed makes the whole corpus deterministic.
	Seed int64
	// Homes is the number of residences.
	Homes int
	// Days is the trace length per device.
	Days int
	// DevicesPerHome limits how many device types each home gets
	// (0 or negative = the full StandardDevices library).
	DevicesPerHome int
	// NoiseFrac is the multiplicative measurement-noise amplitude applied to
	// the nominal mode level. It defaults to 0.04, inside the paper's ±10%
	// classification band. Values ≥ 0.1 would smear the plateaus across
	// band edges.
	NoiseFrac float64
	// StartMonth (1–12) anchors day 0 in the calendar so usage gets
	// seasonal modulation (HVAC/water-heater duty rises in summer/winter,
	// per Texas climate). 0 disables seasonality.
	StartMonth int
	// VacationProb is the per-week probability that a home leaves for a
	// 2–6 day vacation: no device usage, devices idle in standby or are
	// unplugged. Vacations are the main non-stationarity in real traces —
	// a forecaster trained on occupied days faces empty-home days.
	VacationProb float64

	// RawTraces opts out of the compressed columnar trace store: every
	// trace keeps its samples as one eager []float64 plus a flat mode
	// slice, the original representation. The default (false) streams
	// generation into per-day compressed blocks (internal/store) that
	// decode lazily; the two backings are bit-identical sample for sample,
	// so the knob exists for twin equivalence tests and A/B memory timing.
	RawTraces bool
	// MeterResolutionKW rounds every reading to this resolution (in kW,
	// e.g. 0.001 for a 1 W meter feed) before storage — the quantization
	// real metering hardware applies. 0 keeps full float64 precision and
	// reproduces pre-store corpora bit for bit. Applied identically on raw
	// and store-backed paths, so RawTraces stays an equivalence knob under
	// any resolution. Quantized corpora compress far better: full-precision
	// synthetic noise carries ~52 random mantissa bits per sample, which no
	// lossless codec can remove.
	MeterResolutionKW float64
}

func (c Config) withDefaults() Config {
	if c.Homes <= 0 {
		c.Homes = 1
	}
	if c.Days <= 0 {
		c.Days = 1
	}
	if c.NoiseFrac == 0 {
		c.NoiseFrac = 0.04
	}
	return c
}

// Trace is one device's minute-resolution consumption series. Its samples
// live behind a Series (raw slice or compressed day blocks, see series.go);
// the accessors below are the only way in, and their slice-lifetime rules
// are documented on the Series interface.
type Trace struct {
	// Device is the electrical signature used for mode classification.
	Device energy.Device
	kw     Series
	modes  modeStore
}

// Len returns the number of KW samples in the trace.
func (tr *Trace) Len() int { return tr.kw.Len() }

// Day returns the KW samples of day d. The slice is valid until a later
// Day call on this trace evicts it from the decoded-day cache (raw-backed
// traces alias their storage and stay valid forever).
func (tr *Trace) Day(d int) []float64 { return tr.kw.Day(d) }

// DayInto returns a stable snapshot of day d that survives subsequent
// accessor calls: raw-backed traces alias their immutable storage, store-
// backed traces decode into dst (grown as needed). Use this when the day
// is retained — e.g. environment construction.
func (tr *Trace) DayInto(d int, dst []float64) []float64 { return tr.kw.DayInto(d, dst) }

// DayWithHistory returns a day-aligned window covering day d plus at least
// minBack preceding samples (clamped to the trace start) and the absolute
// minute offset of the window's first element. Because the offset is a
// multiple of MinutesPerDay, forecaster time features computed from
// window-relative minutes equal the absolute ones — Predict(series, t-off)
// is bit-identical to Predict(wholeTrace, t).
func (tr *Trace) DayWithHistory(d, minBack int) ([]float64, int) {
	return tr.kw.DayWithHistory(d, minBack)
}

// Window materializes KW samples [start, stop). The slice is valid until
// the next Window call on this trace.
func (tr *Trace) Window(start, stop int) []float64 { return tr.kw.Window(start, stop) }

// MaterializeKW expands the whole series into one contiguous slice
// (raw-backed traces alias; store-backed traces allocate and decode).
// Tests and offline tools use it; simulation hot paths read days.
func (tr *Trace) MaterializeKW() []float64 { return tr.kw.Materialize(nil) }

// ModeDayInto returns day d's ground-truth modes, decoding into dst for
// store-backed traces. The learning pipeline never sees these labels (it
// classifies from KW); tests use them to verify classification fidelity.
func (tr *Trace) ModeDayInto(d int, dst []energy.Mode) []energy.Mode {
	return tr.modes.dayInto(d, dst)
}

// MaterializeModes expands the whole ground-truth mode series.
func (tr *Trace) MaterializeModes() []energy.Mode { return tr.modes.materialize(nil) }

// StorageBytes is the trace's resident sample+label storage: 16 bytes per
// sample raw, or the compressed block bytes when store-backed.
func (tr *Trace) StorageBytes() int { return tr.kw.StorageBytes() + tr.modes.storageBytes() }

// Series exposes the KW backing (benchmarks inspect compression ratios).
func (tr *Trace) Series() Series { return tr.kw }

// Days returns the number of whole days in the trace.
func (tr *Trace) Days() int { return tr.Len() / MinutesPerDay }

// Home is one residence: an archetype plus its device traces.
type Home struct {
	ID        int
	Archetype Archetype
	Traces    []*Trace
	// Vacation marks the days the home is empty (no device usage).
	Vacation []bool
}

// TraceByType returns the home's trace for a device type, or nil.
func (h *Home) TraceByType(devType string) *Trace {
	for _, tr := range h.Traces {
		if tr.Device.Type == devType {
			return tr
		}
	}
	return nil
}

// Dataset is a generated corpus.
type Dataset struct {
	Config Config
	Homes  []*Home
}

// StorageBytes sums the corpus's resident trace storage.
func (ds *Dataset) StorageBytes() int {
	total := 0
	for _, h := range ds.Homes {
		for _, tr := range h.Traces {
			total += tr.StorageBytes()
		}
	}
	return total
}

// Generate synthesizes a corpus per Config. It is deterministic in the
// configuration: the store-backed default and RawTraces produce the same
// sample bits in the same RNG order, differing only in representation.
func Generate(cfg Config) *Dataset {
	cfg = cfg.withDefaults()
	profiles := StandardDevices()
	if cfg.DevicesPerHome > 0 && cfg.DevicesPerHome < len(profiles) {
		profiles = profiles[:cfg.DevicesPerHome]
	}
	archetypes := StandardArchetypes()
	ds := &Dataset{Config: cfg}
	for h := 0; h < cfg.Homes; h++ {
		homeRng := rand.New(rand.NewSource(mix(cfg.Seed, int64(h), 0x9e3779b9)))
		arch := archetypes[h%len(archetypes)]
		home := &Home{ID: h, Archetype: arch, Vacation: vacationDays(homeRng, cfg)}
		for di, prof := range profiles {
			devRng := rand.New(rand.NewSource(mix(cfg.Seed, int64(h), int64(di)+1)))
			home.Traces = append(home.Traces, synthTrace(devRng, homeRng, prof, arch, home.Vacation, cfg))
		}
		ds.Homes = append(ds.Homes, home)
	}
	return ds
}

// vacationDays draws the home's away days: in each week, with probability
// VacationProb, a 2–6 day block starting at a random weekday is marked.
func vacationDays(rng *rand.Rand, cfg Config) []bool {
	away := make([]bool, cfg.Days)
	if cfg.VacationProb <= 0 {
		return away
	}
	for week := 0; week*7 < cfg.Days; week++ {
		if rng.Float64() >= cfg.VacationProb {
			continue
		}
		start := week*7 + rng.Intn(7)
		length := 2 + rng.Intn(5)
		for d := start; d < start+length && d < cfg.Days; d++ {
			away[d] = true
		}
	}
	return away
}

// mix folds three values into one 64-bit seed (splitmix-style).
func mix(a, b, c int64) int64 {
	z := uint64(a) + 0x9e3779b97f4a7c15*uint64(b+1) + 0xbf58476d1ce4e5b9*uint64(c+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// synthTrace builds one device's multi-day trace. Per home, each usage
// window gets a fixed shift (archetype shift + jittered personal offset):
// the *same* home behaves consistently day over day — that is the signal
// forecasters learn — while different homes differ (non-IID).
//
// Samples stream minute by minute through a TraceBuilder, so under the
// store backing a finished day is immediately sealed into a compressed
// block and peak memory stays at one decoded day per trace rather than the
// whole corpus. The RNG draw order is exactly the eager version's.
func synthTrace(devRng, homeRng *rand.Rand, prof DeviceProfile, arch Archetype, vacation []bool, cfg Config) *Trace {
	// Per-home electrical heterogeneity: the same appliance class draws
	// different standby/on power in different homes (different models,
	// ages, firmware). This is the statistical heterogeneity the paper's
	// personalization layers absorb: in OnKW-normalized state space, the
	// standby plateau sits at a different level per home, so one global
	// policy cannot place the standby band correctly for everyone.
	dev := prof.Device
	dev.StandbyKW *= 0.85 + 0.35*homeRng.Float64() // U[0.85, 1.20)
	dev.OnKW *= 0.90 + 0.22*homeRng.Float64()      // U[0.90, 1.12)
	b := NewTraceBuilder(dev, cfg)
	b.Reserve(cfg.Days * MinutesPerDay)
	// Per-home window realization: archetype shift + personal jitter.
	windows := make([]UsageWindow, len(prof.Windows))
	for i, w := range prof.Windows {
		shift := arch.ShiftMin + int(homeRng.NormFloat64()*float64(w.Jitter)/2)
		w.StartMin = clampMinute(w.StartMin + shift)
		w.EndMin = clampMinute(w.EndMin + shift)
		if w.EndMin <= w.StartMin {
			w.EndMin = clampMinute(w.StartMin + 30)
		}
		w.StartProb *= arch.UsageScale
		windows[i] = w
	}
	nightOff := prof.NightOffProb * arch.ThriftScale

	for day := 0; day < cfg.Days; day++ {
		weekend := day%7 >= 5
		season := seasonalUsage(prof.Device.Type, cfg.StartMonth, day)
		offTonight := devRng.Float64() < nightOff
		away := day < len(vacation) && vacation[day]
		onLeft := 0 // remaining minutes of the current ON episode
		for m := 0; m < MinutesPerDay; m++ {
			var mode energy.Mode
			switch {
			case away:
				// Empty home: everything idles in standby (or stays off
				// overnight if tonight was an unplugged night).
				mode = energy.Standby
				if offTonight && m < 6*60 {
					mode = energy.Off
				}
			case onLeft > 0:
				mode = energy.On
				onLeft--
			case offTonight && m < 6*60:
				mode = energy.Off
			default:
				mode = energy.Standby
				// Daily per-window start draw with day-to-day jitter: the
				// window is where it is for this home, but episode starts
				// inside it are stochastic.
				for _, w := range windows {
					if m >= w.StartMin && m < w.EndMin {
						p := w.StartProb * season
						if weekend {
							p *= prof.WeekendFactor
						}
						if devRng.Float64() < p {
							mode = energy.On
							onLeft = episodeDuration(devRng, w.MeanDurMin)
						}
						break
					}
				}
			}
			if err := b.Add(noisyLevel(devRng, dev, mode, cfg.NoiseFrac), mode); err != nil {
				// noisyLevel is finite by construction and the mode enum is
				// closed; a failure here is a generator bug, not data.
				panic(fmt.Sprintf("pecan: synthTrace: %v", err))
			}
		}
	}
	tr, err := b.Finish()
	if err != nil {
		panic(fmt.Sprintf("pecan: synthTrace: %v", err))
	}
	return tr
}

// seasonalUsage returns a usage-probability multiplier for a device type
// on a calendar day. Climate-driven devices (hvac, water_heater) swing the
// most: Texas summers drive cooling, winters drive heating and hot water.
// Other devices get a mild winter-evening boost. startMonth 0 disables
// seasonality.
func seasonalUsage(devType string, startMonth, day int) float64 {
	if startMonth < 1 || startMonth > 12 {
		return 1
	}
	// Day-of-year phase; month lengths are approximated at 30.4 days,
	// which is plenty for a usage modulation curve.
	doy := float64((startMonth-1))*30.4 + float64(day%365)
	phase := 2 * math.Pi * (doy - 196) / 365 // peak at mid-July
	summer := (1 + math.Cos(phase)) / 2      // 1 in July, 0 in January
	switch devType {
	case "hvac":
		return 0.6 + 1.2*summer // heavy cooling load in summer
	case "water_heater":
		return 1.4 - 0.8*summer // hot water demand peaks in winter
	default:
		return 1.1 - 0.2*summer // slightly more indoor usage in winter
	}
}

// episodeDuration draws an ON duration around the mean (clamped ≥ 1).
func episodeDuration(rng *rand.Rand, mean int) int {
	d := int(float64(mean) * (0.5 + rng.Float64())) // U[0.5, 1.5)·mean
	if d < 1 {
		d = 1
	}
	return d
}

// noisyLevel perturbs the nominal mode draw with multiplicative noise kept
// strictly inside the paper's ±10% classification band. Off stays exactly 0.
func noisyLevel(rng *rand.Rand, dev energy.Device, m energy.Mode, frac float64) float64 {
	base := dev.PowerKW(m)
	if m == energy.Off || base == 0 {
		return 0
	}
	eps := (rng.Float64()*2 - 1) * frac
	if eps > 0.09 {
		eps = 0.09
	} else if eps < -0.09 {
		eps = -0.09
	}
	return base * (1 + eps)
}

func clampMinute(m int) int {
	if m < 0 {
		return 0
	}
	if m >= MinutesPerDay {
		return MinutesPerDay - 1
	}
	return m
}

// SplitTrainTest splits a trace in time: the first frac of days for
// training, the remainder for testing (the paper uses 80/20). Store-backed
// traces materialize once; raw traces alias their storage as before.
func (tr *Trace) SplitTrainTest(frac float64) (train, test []float64) {
	if frac <= 0 || frac >= 1 {
		panic(fmt.Sprintf("pecan: split fraction %v outside (0,1)", frac))
	}
	kw := tr.MaterializeKW()
	days := tr.Days()
	var cut int
	if days >= 2 {
		// Day-aligned split, with at least one day on each side.
		cut = int(float64(days)*frac+0.5) * MinutesPerDay
		if cut < MinutesPerDay {
			cut = MinutesPerDay
		}
		if cut > len(kw)-MinutesPerDay {
			cut = len(kw) - MinutesPerDay
		}
	} else {
		// Single-day trace: sample-aligned split, never empty.
		cut = int(float64(len(kw)) * frac)
		if cut < 1 {
			cut = 1
		}
		if cut > len(kw)-1 {
			cut = len(kw) - 1
		}
	}
	return kw[:cut], kw[cut:]
}

// DeviceTypes lists the distinct device types in the dataset, in library
// order (all homes share the same library subset).
func (ds *Dataset) DeviceTypes() []string {
	if len(ds.Homes) == 0 {
		return nil
	}
	var out []string
	for _, tr := range ds.Homes[0].Traces {
		out = append(out, tr.Device.Type)
	}
	return out
}

// TotalStandbyKWh sums the ground-truth standby energy of the whole corpus;
// the "available to save" denominator in the savings experiments. Scratch
// buffers are reused across traces so store-backed corpora stay at one
// materialized trace of transient memory.
func (ds *Dataset) TotalStandbyKWh() float64 {
	total := 0.0
	var kwBuf []float64
	var modeBuf []energy.Mode
	for _, h := range ds.Homes {
		for _, tr := range h.Traces {
			kw := tr.kw.Materialize(kwBuf)
			modes := tr.modes.materialize(modeBuf)
			for i, m := range modes {
				if m == energy.Standby {
					total += kw[i] / 60
				}
			}
			// Raw backings alias their storage (Materialize ignores the
			// scratch); only adopt the buffers the store path filled.
			if tr.modes.raw == nil {
				kwBuf, modeBuf = kw, modes
			}
		}
	}
	return total
}
