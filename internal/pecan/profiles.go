// Package pecan synthesizes a device-level residential load corpus that
// stands in for the Pecan Street Dataport traces the paper evaluates on
// (the real corpus is proprietary). The generator reproduces the properties
// the PFDRL pipeline exploits:
//
//   - minute-resolution per-device consumption with three distinguishable
//     operation plateaus (off / standby / on) inside the paper's 0.9–1.1
//     classification bands;
//   - strong diurnal structure (usage windows) so recurrent forecasters
//     have something to learn, with hour-dependent regularity — nights and
//     early afternoons are consistent across days, mornings and evenings
//     vary — matching the accuracy-by-hour shape of the paper's Figure 6;
//   - inter-home statistical heterogeneity (non-IID): homes belong to
//     occupancy archetypes that shift and rescale the usage windows, which
//     is what the personalization layers are supposed to absorb.
//
// Everything is deterministic in (Config.Seed, home index, device index):
// two runs with the same configuration produce identical corpora, which the
// experiment harness relies on for reproducibility.
package pecan

import (
	"repro/internal/energy"
)

// UsageWindow is a daily time span during which a device may run.
type UsageWindow struct {
	// StartMin and EndMin bound the window in minutes after midnight.
	StartMin, EndMin int
	// StartProb is the per-minute probability that an idle device begins an
	// ON episode inside this window.
	StartProb float64
	// MeanDurMin is the mean ON-episode duration in minutes.
	MeanDurMin int
	// Jitter is the per-home window shift standard deviation in minutes —
	// the main lever that makes mornings/evenings less predictable than
	// nights (bigger jitter ⇒ lower forecast accuracy in that window).
	Jitter int
}

// DeviceProfile couples the electrical signature of a device type with its
// behavioural pattern.
type DeviceProfile struct {
	Device energy.Device
	// Windows are the daily usage windows.
	Windows []UsageWindow
	// NightOffProb is the probability (per day, per home) that the device is
	// fully unplugged overnight (00:00–06:00) instead of idling in standby.
	// This is what puts genuine Off labels in the corpus.
	NightOffProb float64
	// WeekendFactor scales window start probabilities on weekends.
	WeekendFactor float64
}

// StandardDevices is the device library: draws are calibrated to published
// standby/active measurements for common appliances (LBNL standby tables,
// Raj et al. 2009 — the paper's own citation for standby levels).
func StandardDevices() []DeviceProfile {
	return []DeviceProfile{
		{
			Device: energy.Device{Type: "tv", StandbyKW: 0.006, OnKW: 0.12},
			Windows: []UsageWindow{
				{StartMin: 7 * 60, EndMin: 9 * 60, StartProb: 0.01, MeanDurMin: 30, Jitter: 50},
				{StartMin: 18 * 60, EndMin: 23 * 60, StartProb: 0.02, MeanDurMin: 90, Jitter: 60},
			},
			NightOffProb:  0.05,
			WeekendFactor: 1.5,
		},
		{
			Device: energy.Device{Type: "computer", StandbyKW: 0.008, OnKW: 0.2},
			Windows: []UsageWindow{
				{StartMin: 8 * 60, EndMin: 11 * 60, StartProb: 0.012, MeanDurMin: 80, Jitter: 45},
				{StartMin: 19 * 60, EndMin: 23 * 60, StartProb: 0.015, MeanDurMin: 60, Jitter: 55},
			},
			NightOffProb:  0.1,
			WeekendFactor: 1.2,
		},
		{
			Device: energy.Device{Type: "game_console", StandbyKW: 0.01, OnKW: 0.15},
			Windows: []UsageWindow{
				{StartMin: 16 * 60, EndMin: 22 * 60, StartProb: 0.008, MeanDurMin: 70, Jitter: 70},
			},
			NightOffProb:  0.08,
			WeekendFactor: 2.0,
		},
		{
			Device: energy.Device{Type: "microwave", StandbyKW: 0.003, OnKW: 1.2},
			Windows: []UsageWindow{
				{StartMin: 7 * 60, EndMin: 8*60 + 30, StartProb: 0.02, MeanDurMin: 4, Jitter: 35},
				{StartMin: 12 * 60, EndMin: 13 * 60, StartProb: 0.03, MeanDurMin: 4, Jitter: 15},
				{StartMin: 18 * 60, EndMin: 20 * 60, StartProb: 0.025, MeanDurMin: 5, Jitter: 45},
			},
			NightOffProb:  0.02,
			WeekendFactor: 1.1,
		},
		{
			Device: energy.Device{Type: "washer", StandbyKW: 0.002, OnKW: 0.5},
			Windows: []UsageWindow{
				{StartMin: 9 * 60, EndMin: 12 * 60, StartProb: 0.004, MeanDurMin: 45, Jitter: 60},
			},
			NightOffProb:  0.15,
			WeekendFactor: 2.5,
		},
		{
			Device: energy.Device{Type: "coffee_maker", StandbyKW: 0.002, OnKW: 0.9},
			Windows: []UsageWindow{
				{StartMin: 6 * 60, EndMin: 8 * 60, StartProb: 0.03, MeanDurMin: 8, Jitter: 25},
			},
			NightOffProb:  0.1,
			WeekendFactor: 1.3,
		},
		{
			Device: energy.Device{Type: "printer", StandbyKW: 0.005, OnKW: 0.3},
			Windows: []UsageWindow{
				{StartMin: 9 * 60, EndMin: 17 * 60, StartProb: 0.003, MeanDurMin: 6, Jitter: 80},
			},
			NightOffProb:  0.2,
			WeekendFactor: 0.5,
		},
		{
			Device: energy.Device{Type: "hvac", StandbyKW: 0.012, OnKW: 3.0},
			Windows: []UsageWindow{
				{StartMin: 6 * 60, EndMin: 9 * 60, StartProb: 0.02, MeanDurMin: 40, Jitter: 30},
				{StartMin: 13 * 60, EndMin: 16 * 60, StartProb: 0.015, MeanDurMin: 35, Jitter: 20},
				{StartMin: 18 * 60, EndMin: 22 * 60, StartProb: 0.02, MeanDurMin: 45, Jitter: 50},
			},
			NightOffProb:  0.01,
			WeekendFactor: 1.1,
		},
		{
			Device: energy.Device{Type: "water_heater", StandbyKW: 0.004, OnKW: 4.5},
			Windows: []UsageWindow{
				{StartMin: 6 * 60, EndMin: 8 * 60, StartProb: 0.025, MeanDurMin: 20, Jitter: 30},
				{StartMin: 20 * 60, EndMin: 22 * 60, StartProb: 0.02, MeanDurMin: 20, Jitter: 40},
			},
			NightOffProb:  0.02,
			WeekendFactor: 1.0,
		},
		{
			Device: energy.Device{Type: "smart_lighting", StandbyKW: 0.0015, OnKW: 0.06},
			Windows: []UsageWindow{
				{StartMin: 6 * 60, EndMin: 8 * 60, StartProb: 0.03, MeanDurMin: 60, Jitter: 30},
				{StartMin: 18 * 60, EndMin: 23*60 + 30, StartProb: 0.04, MeanDurMin: 150, Jitter: 45},
			},
			NightOffProb:  0.03,
			WeekendFactor: 1.1,
		},
	}
}

// Archetype is an occupancy pattern; it is the source of non-IID structure
// across residences.
type Archetype struct {
	// Name identifies the archetype.
	Name string
	// ShiftMin translates every usage window (positive = later in the day).
	ShiftMin int
	// UsageScale multiplies window start probabilities.
	UsageScale float64
	// ThriftProb scales NightOffProb: thrifty homes unplug more.
	ThriftScale float64
}

// StandardArchetypes returns the four occupancy archetypes homes are drawn
// from.
func StandardArchetypes() []Archetype {
	return []Archetype{
		{Name: "worker", ShiftMin: 0, UsageScale: 1.0, ThriftScale: 1.0},
		{Name: "early_riser", ShiftMin: -75, UsageScale: 1.1, ThriftScale: 1.5},
		{Name: "night_owl", ShiftMin: 120, UsageScale: 1.05, ThriftScale: 0.6},
		{Name: "homebody", ShiftMin: 30, UsageScale: 1.6, ThriftScale: 0.8},
	}
}
