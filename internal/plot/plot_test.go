package plot

import (
	"encoding/xml"
	"strings"
	"testing"
)

func sampleChart() *Chart {
	return &Chart{
		Title:  "Accuracy vs days",
		XLabel: "day",
		YLabel: "accuracy",
		X:      []float64{1, 2, 3, 4},
		Series: []Series{
			{Name: "LSTM", Y: []float64{0.3, 0.5, 0.6, 0.65}},
			{Name: "LR", Y: []float64{0.2, 0.22, 0.21, 0.2}},
		},
	}
}

func TestSVGWellFormed(t *testing.T) {
	svg, err := sampleChart().SVG()
	if err != nil {
		t.Fatal(err)
	}
	// Must be parseable XML.
	dec := xml.NewDecoder(strings.NewReader(svg))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("SVG not well-formed: %v", err)
		}
	}
	for _, want := range []string{"<svg", "polyline", "Accuracy vs days", "LSTM", "LR", "</svg>"} {
		if !strings.Contains(svg, want) {
			t.Fatalf("SVG missing %q", want)
		}
	}
	// Two series → two polylines.
	if got := strings.Count(svg, "<polyline"); got != 2 {
		t.Fatalf("polylines = %d, want 2", got)
	}
}

func TestSVGErrors(t *testing.T) {
	if _, err := (&Chart{Title: "empty"}).SVG(); err == nil {
		t.Fatal("empty chart accepted")
	}
	c := sampleChart()
	c.Series[0].Y = []float64{1}
	if _, err := c.SVG(); err == nil {
		t.Fatal("length mismatch accepted")
	}
	flat := &Chart{X: []float64{1, 1}, Series: []Series{{Name: "s", Y: []float64{2, 2}}}}
	if _, err := flat.SVG(); err != nil {
		t.Fatalf("degenerate ranges should still render: %v", err)
	}
}

func TestSVGEscapesMarkup(t *testing.T) {
	c := sampleChart()
	c.Title = `a<b & c>d`
	svg, err := c.SVG()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(svg, "a<b") {
		t.Fatal("title not escaped")
	}
	if !strings.Contains(svg, "a&lt;b &amp; c&gt;d") {
		t.Fatal("escaped title missing")
	}
}

func TestFromTable(t *testing.T) {
	header := []string{"day", "LSTM", "LR"}
	rows := [][]string{
		{"1", "0.3", "0.2"},
		{"2", "0.5", "0.25"},
		{"best", "2", ""}, // summary row skipped
	}
	c, err := FromTable("t", header, rows)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.X) != 2 || len(c.Series) != 2 {
		t.Fatalf("chart shape: %d x-points, %d series", len(c.X), len(c.Series))
	}
	if c.Series[0].Name != "LSTM" || c.Series[0].Y[1] != 0.5 {
		t.Fatalf("series wrong: %+v", c.Series[0])
	}
}

func TestFromTableSkipsNonNumericColumns(t *testing.T) {
	header := []string{"x", "num", "label"}
	rows := [][]string{{"1", "2", "hello"}, {"2", "3", "world"}}
	c, err := FromTable("t", header, rows)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Series) != 1 || c.Series[0].Name != "num" {
		t.Fatalf("series selection wrong: %+v", c.Series)
	}
}

func TestFromTableErrors(t *testing.T) {
	if _, err := FromTable("t", []string{"one"}, nil); err == nil {
		t.Fatal("single-column table accepted")
	}
	if _, err := FromTable("t", []string{"x", "y"}, [][]string{{"a", "b"}}); err == nil {
		t.Fatal("no numeric rows accepted")
	}
	if _, err := FromTable("t", []string{"x", "y"}, [][]string{{"1", "zzz"}}); err == nil {
		t.Fatal("no numeric series accepted")
	}
}
