// Package plot renders experiment results as standalone SVG line charts —
// no dependencies, suitable for dropping into a README or a paper draft.
// cmd/pfdrl-bench uses it (flag -svg) to emit one chart per regenerated
// figure.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named line on a chart.
type Series struct {
	Name string
	// Y values, aligned with the chart's X values.
	Y []float64
}

// Chart is a line chart specification.
type Chart struct {
	Title          string
	XLabel, YLabel string
	// X values shared by all series.
	X      []float64
	Series []Series
	// Width/Height in pixels (defaults 640×400).
	Width, Height int
}

// palette holds distinguishable line colors.
var palette = []string{
	"#1f77b4", "#d62728", "#2ca02c", "#ff7f0e", "#9467bd",
	"#8c564b", "#e377c2", "#7f7f7f", "#bcbd22", "#17becf",
}

const margin = 56.0

// SVG renders the chart.
func (c *Chart) SVG() (string, error) {
	if len(c.X) == 0 {
		return "", fmt.Errorf("plot: chart %q has no x values", c.Title)
	}
	if len(c.Series) == 0 {
		return "", fmt.Errorf("plot: chart %q has no series", c.Title)
	}
	for _, s := range c.Series {
		if len(s.Y) != len(c.X) {
			return "", fmt.Errorf("plot: series %q has %d points, x has %d", s.Name, len(s.Y), len(c.X))
		}
	}
	w, h := float64(c.Width), float64(c.Height)
	if w <= 0 {
		w = 640
	}
	if h <= 0 {
		h = 400
	}

	xMin, xMax := minMax(c.X)
	yMin, yMax := math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		lo, hi := minMax(s.Y)
		yMin = math.Min(yMin, lo)
		yMax = math.Max(yMax, hi)
	}
	if xMax == xMin {
		xMax = xMin + 1
	}
	if yMax == yMin {
		yMax = yMin + 1
	}
	// Pad the y range 5% so lines don't hug the frame.
	pad := (yMax - yMin) * 0.05
	yMin -= pad
	yMax += pad

	px := func(x float64) float64 { return margin + (x-xMin)/(xMax-xMin)*(w-2*margin) }
	py := func(y float64) float64 { return h - margin - (y-yMin)/(yMax-yMin)*(h-2*margin) }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n", w, h, w, h)
	fmt.Fprintf(&b, `<rect width="%.0f" height="%.0f" fill="white"/>`+"\n", w, h)
	// Frame.
	fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="none" stroke="#333" stroke-width="1"/>`+"\n",
		margin, margin, w-2*margin, h-2*margin)
	// Title and axis labels.
	fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" text-anchor="middle" font-family="sans-serif" font-size="15" font-weight="bold">%s</text>`+"\n",
		w/2, margin/2+5, escape(c.Title))
	fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" text-anchor="middle" font-family="sans-serif" font-size="12">%s</text>`+"\n",
		w/2, h-10, escape(c.XLabel))
	fmt.Fprintf(&b, `<text x="14" y="%.1f" text-anchor="middle" font-family="sans-serif" font-size="12" transform="rotate(-90 14 %.1f)">%s</text>`+"\n",
		h/2, h/2, escape(c.YLabel))
	// Ticks: 5 per axis.
	for i := 0; i <= 4; i++ {
		fx := xMin + (xMax-xMin)*float64(i)/4
		fy := yMin + (yMax-yMin)*float64(i)/4
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#ccc" stroke-width="0.5"/>`+"\n",
			px(fx), margin, px(fx), h-margin)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#ccc" stroke-width="0.5"/>`+"\n",
			margin, py(fy), w-margin, py(fy))
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" text-anchor="middle" font-family="sans-serif" font-size="10">%s</text>`+"\n",
			px(fx), h-margin+14, fmtTick(fx))
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" text-anchor="end" font-family="sans-serif" font-size="10">%s</text>`+"\n",
			margin-5, py(fy)+3, fmtTick(fy))
	}
	// Series.
	for si, s := range c.Series {
		color := palette[si%len(palette)]
		var pts []string
		for i, y := range s.Y {
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", px(c.X[i]), py(y)))
		}
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.8"/>`+"\n",
			strings.Join(pts, " "), color)
		for i, y := range s.Y {
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="2.2" fill="%s"/>`+"\n", px(c.X[i]), py(y), color)
		}
		// Legend entry.
		lx, ly := w-margin-120, margin+14+float64(si)*16
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="2"/>`+"\n",
			lx, ly-4, lx+20, ly-4, color)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="11">%s</text>`+"\n",
			lx+26, ly, escape(s.Name))
	}
	b.WriteString("</svg>\n")
	return b.String(), nil
}

func minMax(xs []float64) (float64, float64) {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range xs {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	return lo, hi
}

func fmtTick(v float64) string {
	a := math.Abs(v)
	switch {
	case a >= 1000:
		return fmt.Sprintf("%.0f", v)
	case a >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}
