package plot

import (
	"fmt"
	"strconv"
)

// FromTable converts a tabular result (header + string rows, as produced by
// the experiment drivers) into a line chart: the first column becomes the
// x-axis, every other fully numeric column becomes a series. Rows whose
// first cell is not numeric (summary rows like "best" or
// "convergence_day") are skipped.
func FromTable(title string, header []string, rows [][]string) (*Chart, error) {
	if len(header) < 2 {
		return nil, fmt.Errorf("plot: table %q needs at least 2 columns", title)
	}
	var xs []float64
	keep := make([][]string, 0, len(rows))
	for _, row := range rows {
		if len(row) != len(header) {
			continue
		}
		x, err := strconv.ParseFloat(row[0], 64)
		if err != nil {
			continue // summary row
		}
		xs = append(xs, x)
		keep = append(keep, row)
	}
	if len(xs) == 0 {
		return nil, fmt.Errorf("plot: table %q has no numeric rows", title)
	}
	chart := &Chart{Title: title, XLabel: header[0]}
	for col := 1; col < len(header); col++ {
		ys := make([]float64, 0, len(keep))
		ok := true
		for _, row := range keep {
			v, err := strconv.ParseFloat(row[col], 64)
			if err != nil {
				ok = false
				break
			}
			ys = append(ys, v)
		}
		if ok {
			chart.Series = append(chart.Series, Series{Name: header[col], Y: ys})
		}
	}
	if len(chart.Series) == 0 {
		return nil, fmt.Errorf("plot: table %q has no numeric series columns", title)
	}
	chart.X = xs
	return chart, nil
}
