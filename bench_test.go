// Package repro's root benchmark suite regenerates every table and figure
// of the paper's evaluation (one Benchmark per figure, backed by the
// drivers in internal/experiments) and benchmarks the substrates the
// system is built on. Run with:
//
//	go test -bench=. -benchmem
//
// Figure benches use a reduced scale so the whole suite completes on a
// laptop; cmd/pfdrl-bench runs the same drivers at larger scales.
package repro

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/dqn"
	"repro/internal/energy"
	"repro/internal/experiments"
	"repro/internal/fed"
	"repro/internal/fednet"
	"repro/internal/forecast"
	"repro/internal/nn"
	"repro/internal/pecan"
	"repro/internal/tensor"
)

// benchScale is the figure-bench scale: small enough that one iteration of
// the heaviest sweep stays in single-digit seconds.
func benchScale() experiments.Scale {
	sc := experiments.Quick()
	sc.Homes = 4
	sc.Days = 3
	return sc
}

// --- Figure benches: one per evaluation figure -------------------------

func BenchmarkFig02Alpha(b *testing.B) {
	sc := benchScale()
	sc.DQNHidden = []int{12, 12, 12, 12} // 4-point α sweep per iteration
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Alpha(sc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig03Beta(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Beta(sc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig04Gamma(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Gamma(sc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig05CDF(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		r, err := experiments.CompareForecasters(sc)
		if err != nil {
			b.Fatal(err)
		}
		_ = r.CDFTable()
	}
}

func BenchmarkFig06Hourly(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		r, err := experiments.CompareForecasters(sc)
		if err != nil {
			b.Fatal(err)
		}
		_ = r.HourlyTable()
	}
}

func BenchmarkFig07Days(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AccuracyVsDays(sc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig08Clients(b *testing.B) {
	sc := benchScale()
	sc.Days = 2
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AccuracyVsClients(sc, []int{2, 4}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig09Methods(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.CompareMethods(sc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10Cost(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.MonetarySavings(sc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11HourSave(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		r, err := experiments.CompareMethods(sc)
		if err != nil {
			b.Fatal(err)
		}
		_ = r.HourlySavingsTable()
	}
}

func BenchmarkFig12Personal(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Personalization(sc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig13FcastTime(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ForecastOverhead(sc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig14EMSTime(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		r, err := experiments.CompareMethods(sc)
		if err != nil {
			b.Fatal(err)
		}
		_ = r.EMSOverheadTable()
	}
}

// --- Substrate microbenches ---------------------------------------------

func BenchmarkMatMul100(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := tensor.RandNormal(rng, 100, 100, 0, 1)
	y := tensor.RandNormal(rng, 100, 100, 0, 1)
	dst := tensor.New(100, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMulInto(dst, x, y)
	}
}

func BenchmarkMatMul512Parallel(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := tensor.RandNormal(rng, 512, 512, 0, 1)
	y := tensor.RandNormal(rng, 512, 512, 0, 1)
	dst := tensor.New(512, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMulInto(dst, x, y)
	}
}

func BenchmarkLSTMForwardBackward(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	model := nn.NewLSTMRegressor(rng, 60, 32, 60)
	x := tensor.RandNormal(rng, 16, 60, 0, 1)
	y := tensor.RandNormal(rng, 16, 60, 0, 1)
	opt := &nn.SGD{LR: 0.01}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nn.FitBatch(model, nn.MSE{}, opt, x, y)
	}
}

// BenchmarkDQNLearnPaperScale exercises the paper's full 8×100 network with
// a 120-dimensional state and batch 32 — one Algorithm 2 inner iteration.
func BenchmarkDQNLearnPaperScale(b *testing.B) {
	agent := dqn.New(dqn.Config{StateDim: 120, Seed: 1})
	rng := rand.New(rand.NewSource(2))
	st := make([]float64, 120)
	for i := 0; i < 64; i++ {
		for j := range st {
			st[j] = rng.Float64()
		}
		agent.Observe(dqn.Transition{State: append([]float64(nil), st...), Action: i % 3, Reward: 10, Next: append([]float64(nil), st...)})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agent.Learn()
	}
}

func BenchmarkFedAvgRound8Agents(b *testing.B) {
	models := make([]*nn.Sequential, 8)
	for i := range models {
		models[i] = nn.NewMLP(rand.New(rand.NewSource(int64(i))), 60, 100, 100, 3)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net := fednet.New(8, fednet.Config{})
		if _, err := fed.DecentralizedRound(net, models, "m", -1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRewardTable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = energy.Reward(energy.Mode(i%3), energy.Mode((i/3)%3))
	}
}

func BenchmarkPecanGenerateHomeWeek(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = pecan.Generate(pecan.Config{Seed: int64(i), Homes: 1, Days: 7})
	}
}

func BenchmarkForecastLSTMPredictHour(b *testing.B) {
	ds := pecan.Generate(pecan.Config{Seed: 1, Homes: 1, Days: 2, DevicesPerHome: 1})
	tr := ds.Homes[0].Traces[0]
	cfg := forecast.DefaultConfig(tr.Device.OnKW)
	cfg.Window, cfg.Hidden = 60, 32
	f := forecast.MustNew(forecast.KindLSTM, cfg)
	kw := tr.MaterializeKW()
	f.TrainEpochs(kw, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = f.Predict(kw, 1440)
	}
}

// --- Ablation benches (design choices called out in DESIGN.md) ----------

// BenchmarkAblationReplay compares small vs paper-size replay memories.
func BenchmarkAblationReplay(b *testing.B) {
	for _, mem := range []int{200, 2000} {
		b.Run(map[int]string{200: "mem200", 2000: "mem2000"}[mem], func(b *testing.B) {
			agent := dqn.New(dqn.Config{StateDim: 16, Hidden: []int{32, 32}, MemoryCapacity: mem, Seed: 1})
			rng := rand.New(rand.NewSource(2))
			for i := 0; i < mem; i++ {
				st := []float64{rng.Float64()}
				state := make([]float64, 16)
				state[0] = st[0]
				agent.Observe(dqn.Transition{State: state, Action: i % 3, Reward: 10, Done: true})
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				agent.Learn()
			}
		})
	}
}

// BenchmarkAblationLoss compares the paper's Huber DQN loss against MSE on
// identical batches (outlier rewards make Huber's gradient bounded).
func BenchmarkAblationLoss(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	pred := tensor.RandNormal(rng, 32, 3, 0, 1)
	target := tensor.RandNormal(rng, 32, 3, 0, 5)
	b.Run("huber", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, _ = nn.Huber{Delta: 1}.Loss(pred, target)
		}
	})
	b.Run("mse", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, _ = nn.MSE{}.Loss(pred, target)
		}
	})
}

// BenchmarkAblationTopology compares the simulated round cost of the
// paper's serverless all-to-all exchange against the cloud star topology.
func BenchmarkAblationTopology(b *testing.B) {
	models := make([]*nn.Sequential, 6)
	for i := range models {
		models[i] = nn.NewMLP(rand.New(rand.NewSource(7)), 16, 32, 3)
	}
	b.Run("all-to-all", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			net := fednet.New(6, fednet.Config{})
			if _, err := fed.DecentralizedRound(net, models, "m", -1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("star", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			net := fednet.New(6, fednet.Config{Topology: fednet.Star})
			if _, err := fed.CentralizedRound(net, models, "m", -1, true); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkEndToEndPFDRLDay runs one simulated PFDRL day at experiment
// scale: the unit of work behind every savings figure.
func BenchmarkEndToEndPFDRLDay(b *testing.B) {
	cfg := core.DefaultConfig(core.MethodPFDRL)
	cfg.Homes, cfg.Days, cfg.DevicesPerHome = 2, 1, 2
	cfg.DQNHidden = []int{16, 16, 16, 16, 16, 16, 16, 16}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys, err := core.NewSystem(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sys.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Extension benches ---------------------------------------------------

// BenchmarkSecureVsPlainRound quantifies the masking overhead of secure
// aggregation relative to plain decentralized FedAvg.
func BenchmarkSecureVsPlainRound(b *testing.B) {
	mk := func() []*nn.Sequential {
		models := make([]*nn.Sequential, 6)
		for i := range models {
			models[i] = nn.NewMLP(rand.New(rand.NewSource(int64(i))), 32, 64, 3)
		}
		return models
	}
	b.Run("plain", func(b *testing.B) {
		models := mk()
		for i := 0; i < b.N; i++ {
			net := fednet.New(6, fednet.Config{})
			if _, err := fed.DecentralizedRound(net, models, "m", -1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("secure", func(b *testing.B) {
		models := mk()
		for i := 0; i < b.N; i++ {
			net := fednet.New(6, fednet.Config{})
			if err := fed.SecureDecentralizedRound(net, models, "m", -1, int64(i)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkGossipRound measures one ring-gossip averaging step.
func BenchmarkGossipRound(b *testing.B) {
	models := make([]*nn.Sequential, 8)
	for i := range models {
		models[i] = nn.NewMLP(rand.New(rand.NewSource(int64(i))), 32, 64, 3)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net := fednet.New(8, fednet.Config{Topology: fednet.Ring})
		if _, err := fed.GossipRound(net, models, "m", -1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRecurrentCells compares LSTM vs GRU vs TCN forward+backward at
// equal hidden width and window.
func BenchmarkRecurrentCells(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := tensor.RandNormal(rng, 16, 3*24, 0, 1)
	run := func(b *testing.B, model *nn.Sequential, outW int) {
		y := tensor.RandNormal(rng, 16, outW, 0, 1)
		opt := &nn.SGD{LR: 0.01}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			nn.FitBatch(model, nn.MSE{}, opt, x, y)
		}
	}
	b.Run("lstm", func(b *testing.B) {
		m := nn.NewSequential(nn.NewLSTM(rng, 3, 16, 24), nn.NewDenseXavier(rng, 16, 8))
		run(b, m, 8)
	})
	b.Run("gru", func(b *testing.B) {
		m := nn.NewSequential(nn.NewGRU(rng, 3, 16, 24), nn.NewDenseXavier(rng, 16, 8))
		run(b, m, 8)
	})
	b.Run("tcn", func(b *testing.B) {
		c1 := nn.NewConv1D(rng, 3, 8, 3, 24, 1)
		c2 := nn.NewConv1D(rng, 8, 8, 3, c1.OutLen(), 2)
		m := nn.NewSequential(c1, nn.NewReLU(), c2, nn.NewReLU(), nn.NewDenseXavier(rng, c2.OutWidth(), 8))
		run(b, m, 8)
	})
}

// BenchmarkPrioritizedVsUniformReplay compares sampling costs.
func BenchmarkPrioritizedVsUniformReplay(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	b.Run("uniform", func(b *testing.B) {
		buf := dqn.NewReplayBuffer(2000)
		for i := 0; i < 2000; i++ {
			buf.Add(dqn.Transition{})
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf.Sample(rng, 32)
		}
	})
	b.Run("prioritized", func(b *testing.B) {
		buf := dqn.NewPrioritizedReplay(2000, 0.6)
		for i := 0; i < 2000; i++ {
			buf.Add(dqn.Transition{})
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, idxs, _ := buf.Sample(rng, 32, 0.4)
			errs := make([]float64, len(idxs))
			for j := range errs {
				errs[j] = 1
			}
			buf.UpdatePriorities(idxs, errs)
		}
	})
}
