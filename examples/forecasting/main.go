// Forecasting: the four load-forecasting algorithms head to head on one
// device trace — the comparison behind the paper's Figure 5.
//
// A two-week TV trace is split 80/20 in time; each algorithm trains on the
// first stretch and predicts the held-out days hour by hour. Accuracy is
// the paper's metric Ac = 1 − |V−RV|/RV.
//
//	go run ./examples/forecasting
package main

import (
	"fmt"
	"log"

	"repro/internal/forecast"
	"repro/internal/pecan"
)

func main() {
	ds := pecan.Generate(pecan.Config{Seed: 11, Homes: 1, Days: 15, DevicesPerHome: 1})
	tr := ds.Homes[0].Traces[0]
	train, test := tr.SplitTrainTest(0.8)
	fmt.Printf("device %q: %d train days, %d test days\n\n",
		tr.Device.Type, len(train)/pecan.MinutesPerDay, len(test)/pecan.MinutesPerDay)

	floor := forecast.FloorFor(tr.Device.OnKW)
	fmt.Printf("%-5s %9s %10s\n", "model", "accuracy", "params")
	for _, kind := range forecast.AllKinds() {
		cfg := forecast.DefaultConfig(tr.Device.OnKW)
		cfg.Window = 30
		cfg.Hidden = 16
		cfg.Epochs = 20
		cfg.Seed = 3
		f, err := forecast.New(kind, cfg)
		if err != nil {
			log.Fatal(err)
		}
		f.Fit(train)
		_, pred, real := forecast.EvaluateOnSeries(f, test, floor)
		acc := forecast.MeanAccuracy(pred, real, floor)
		fmt.Printf("%-5s %8.1f%% %10d\n", f.Name(), 100*acc, f.Model().NumParams())
	}

	fmt.Println("\nExpected ordering (paper Fig 5): LR < SVM < BP < LSTM.")
}
