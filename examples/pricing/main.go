// Pricing: what the saved standby energy is worth under the two Texas
// electricity plans — the paper's Figure 10 view, for one home-year.
//
// A short PFDRL run produces the settled hourly savings profile; that
// profile is then priced across a calendar year under the fixed plan
// (11.67 ¢/kWh) and the variable time-of-use plan (0.8–20 ¢/kWh).
//
//	go run ./examples/pricing
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/pricing"
)

func main() {
	cfg := core.DefaultConfig(core.MethodPFDRL)
	cfg.Homes = 4
	cfg.Days = 5
	cfg.DevicesPerHome = 3
	cfg.Seed = 5

	sys, err := core.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sys.Run()
	if err != nil {
		log.Fatal(err)
	}

	var dailyKWh float64
	for _, v := range res.SavedByHour {
		dailyKWh += v
	}
	fmt.Printf("settled savings profile: %.3f kWh per home per day\n\n", dailyKWh)

	fmt.Printf("%5s %12s %15s %8s\n", "month", "fixed ($)", "variable ($)", "winner")
	var fixedYear, varYear float64
	for month := 1; month <= 12; month++ {
		days := float64(pricing.DaysInMonth(month))
		f := pricing.CostOfHourlyKWh(pricing.FixedRate{}, month, res.SavedByHour) * days
		v := pricing.CostOfHourlyKWh(pricing.VariableRate{}, month, res.SavedByHour) * days
		fixedYear += f
		varYear += v
		winner := "fixed"
		if v > f {
			winner = "variable"
		}
		fmt.Printf("%5d %12.2f %15.2f %8s\n", month, f, v, winner)
	}
	fmt.Printf("\nyear: fixed $%.2f vs variable $%.2f (paper Fig 10: roughly equal,\n", fixedYear, varYear)
	fmt.Println("variable wins Apr-Jun, fixed wins Aug-Oct)")
}
