// Pricing: a demand-response event day, declared through the scenario
// layer instead of hand-coded wiring.
//
// The shipped dr_event_day scenario equips every home with a battery and
// an evening-commuter EV, then scripts two DR windows on day 0: a 3×
// price spike with 50% EV charge curtailment over the evening peak and a
// half-price overnight rebate. The example runs the scenario, runs an
// event-free twin of the same fleet, and prices the difference — the
// batteries and EVs shift load out of the spike, so the DR day costs less
// than naive dispatch of the same devices would suggest.
//
//	go run ./examples/pricing
package main

import (
	"errors"
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/pricing"
	"repro/internal/scenario"
)

func main() {
	sc, err := scenario.Load("scenarios/dr_event_day.json")
	if errors.Is(err, os.ErrNotExist) {
		sc, err = scenario.Load("../../scenarios/dr_event_day.json")
	}
	if err != nil {
		log.Fatal(err)
	}

	cfg := core.DefaultConfig(core.MethodPFDRL)
	cfg.Homes = 4
	cfg.Days = 3
	cfg.DevicesPerHome = 3
	cfg.Seed = 5
	cfg.Scenario = sc

	fmt.Printf("scenario: %s\n%s\n\n", sc.Name, sc.Description)

	// The DR windows as the dispatch agents will see them: the overlay
	// layered on the June TOU tariff.
	base := pricing.VariableRate{}
	overlay := sc.Overlay(base)
	fmt.Println("day 0 price windows (June TOU base):")
	for _, ev := range sc.Events {
		mid := (ev.StartMin + ev.EndMin) / 2
		fmt.Printf("  %02d:%02d-%02d:%02d  ×%.1f → %.1f ¢/kWh (base %.1f)",
			ev.StartMin/60, ev.StartMin%60, ev.EndMin/60, ev.EndMin%60,
			ev.PriceFactor, 100*overlay.PriceAt(ev.Day, 6, mid), 100*base.PricePerKWh(6, mid))
		if ev.EVCurtail > 0 {
			fmt.Printf("  (EV charging curtailed %.0f%%)", 100*ev.EVCurtail)
		}
		fmt.Println()
	}

	res := run(cfg)

	// The twin: identical fleet, no DR windows.
	twin := *sc
	twin.Events = nil
	cfg.Scenario = &twin
	quiet := run(cfg)

	fmt.Printf("\n%5s %18s %18s\n", "day", "DR day (¢)", "no events (¢)")
	for d := range res.DER.DailyCostCents {
		tag := ""
		if d == 0 {
			tag = "  ← event day"
		}
		fmt.Printf("%5d %18.1f %18.1f%s\n", d, res.DER.DailyCostCents[d], quiet.DER.DailyCostCents[d], tag)
	}
	fmt.Printf("\nrun total: %.1f¢ with DR vs %.1f¢ without (Δ %+.1f¢)\n",
		res.DER.CostCents, quiet.DER.CostCents, res.DER.CostCents-quiet.DER.CostCents)
	fmt.Println(res.DERLine())
}

func run(cfg core.Config) *core.Result {
	sys, err := core.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sys.Run()
	if err != nil {
		log.Fatal(err)
	}
	return res
}
