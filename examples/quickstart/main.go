// Quickstart: the smallest end-to-end PFDRL run.
//
// Three residences collaboratively learn to cut standby energy: each trains
// a per-device LSTM load forecaster (federated without any server, every
// β hours), feeds its forecasts to a local DQN energy-management agent, and
// federates the agent's base layers every γ hours while keeping the last
// layers personal.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
)

func main() {
	cfg := core.DefaultConfig(core.MethodPFDRL)
	cfg.Homes = 3
	cfg.Days = 4
	cfg.DevicesPerHome = 2
	cfg.Seed = 42

	sys, err := core.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("PFDRL quickstart: 3 homes x 2 devices, 4 days, α=6, β=γ=12h")
	res, err := sys.Run()
	if err != nil {
		log.Fatal(err)
	}

	for d, kwh := range res.DailySavedKWhPerHome {
		fmt.Printf("day %d: saved %.3f kWh per home (%.0f%% of standby energy)\n",
			d+1, kwh, 100*res.DailySavedFrac[d])
	}
	fmt.Printf("\nload-forecast accuracy: %.0f%%\n", 100*res.ForecastAccuracy)
	fmt.Printf("all without a cloud server: %d LAN messages for forecasting, %d for the EMS plan\n",
		res.ForecastNetStats.MessagesSent, res.EMSNetStats.MessagesSent)
}
