// Neighborhood: a non-IID multi-home comparison of all five EMS methods.
//
// Six homes drawn from four occupancy archetypes (worker, early riser,
// night owl, homebody) run the same week under each architecture of the
// paper's Table 2. The output mirrors Figure 9: who saves the most energy,
// and who gets there fastest.
//
//	go run ./examples/neighborhood
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
)

func main() {
	fmt.Println("Neighborhood: 6 non-IID homes, 6 days, five EMS architectures")
	fmt.Println()
	fmt.Printf("%-7s %14s %16s %13s %12s\n", "method", "saved kWh/home", "saved standby %", "converged day", "mean reward")

	for _, m := range core.AllMethods() {
		cfg := core.DefaultConfig(m)
		cfg.Homes = 6
		cfg.Days = 6
		cfg.DevicesPerHome = 2
		cfg.Seed = 7
		// Smaller agents keep the five-way comparison fast.
		cfg.DQNHidden = []int{16, 16, 16, 16, 16, 16, 16, 16}
		cfg.LearnEveryMinutes = 10

		sys, err := core.NewSystem(cfg)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sys.Run()
		if err != nil {
			log.Fatal(err)
		}
		last := len(res.DailySavedKWhPerHome) - 1
		fmt.Printf("%-7s %14.3f %15.1f%% %13d %12.2f\n",
			m, res.DailySavedKWhPerHome[last], 100*res.DailySavedFrac[last],
			res.ConvergenceDay+1, res.DailyMeanReward[last])
		for _, line := range res.CommsLines() {
			fmt.Printf("        %s\n", line)
		}
	}

	fmt.Println()
	fmt.Println("Paper Fig 9's shape: Local and PFDRL lead (personalization), PFDRL and FRL")
	fmt.Println("converge fastest (shared EMS plans). At this scale saved-energy saturates for")
	fmt.Println("every method (the metric never penalizes wrong power-downs); the mean-reward")
	fmt.Println("column is the comfort-aware view where personalization shows.")
}
