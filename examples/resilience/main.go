// Resilience: the decentralized fabric under message loss.
//
// A residential LAN drops packets; a cloud aggregator times out. This
// example runs PFDRL at increasing drop rates and shows that plain
// decentralized FedAvg degrades gracefully (each agent simply averages
// whatever arrived plus its own model), while the secure-aggregation
// variant — whose pairwise masks only cancel under full participation —
// detects the loss and fails loudly instead of silently corrupting models.
//
//	go run ./examples/resilience
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/fed"
	"repro/internal/fednet"
	"repro/internal/nn"
)

func main() {
	fmt.Println("Part 1: PFDRL end to end under increasing message loss")
	fmt.Printf("%9s %18s %16s %9s\n", "drop rate", "final saved frac", "forecast acc", "dropped")
	for _, drop := range []float64{0, 0.2, 0.5} {
		cfg := core.DefaultConfig(core.MethodPFDRL)
		cfg.Homes = 4
		cfg.Days = 4
		cfg.DevicesPerHome = 2
		cfg.Seed = 9
		cfg.DropProb = drop
		sys, err := core.NewSystem(cfg)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sys.Run()
		if err != nil {
			log.Fatal(err)
		}
		last := len(res.DailySavedFrac) - 1
		dropped := res.ForecastNetStats.MessagesDropped + res.EMSNetStats.MessagesDropped
		fmt.Printf("%8.0f%% %17.1f%% %15.1f%% %9d\n",
			100*drop, 100*res.DailySavedFrac[last], 100*res.ForecastAccuracy, dropped)
	}

	fmt.Println("\nPart 2: secure aggregation refuses to average a partial round")
	models := make([]*nn.Sequential, 4)
	for i := range models {
		models[i] = nn.NewMLP(rand.New(rand.NewSource(int64(i))), 8, 16, 3)
	}
	lossy := fednet.New(4, fednet.Config{DropProb: 0.4, Seed: 1})
	if err := fed.SecureDecentralizedRound(lossy, models, "drl", -1, 42); err != nil {
		fmt.Printf("  lossy fabric:    %v\n", err)
	} else {
		fmt.Println("  lossy fabric:    unexpectedly succeeded")
	}
	clean := fednet.New(4, fednet.Config{})
	if err := fed.SecureDecentralizedRound(clean, models, "drl", -1, 42); err != nil {
		log.Fatal(err)
	}
	fmt.Println("  reliable fabric: round completed, every payload masked, mean exact")
}
