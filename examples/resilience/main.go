// Resilience: the decentralized fabric under message loss and scripted
// chaos.
//
// A residential LAN drops packets, partitions, and hosts slow or crashing
// agents; a cloud aggregator times out. This example runs PFDRL three
// ways — clean, lossy, and under an aggressive scripted FaultPlan with an
// acked retry transport — and prints the per-run ResilienceReport: plain
// decentralized FedAvg degrades gracefully (each agent averages whatever
// valid sets arrived plus its own model), corrupt payloads are caught by
// the wire checksum, and retries keep rounds alive through the partition.
// The secure-aggregation variant — whose pairwise masks only cancel under
// full participation — instead detects loss and fails loudly rather than
// silently corrupting models.
//
//	go run ./examples/resilience
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/fed"
	"repro/internal/fednet"
	"repro/internal/nn"
)

func main() {
	fmt.Println("Part 1: PFDRL end to end under increasing chaos")
	type scenario struct {
		name  string
		drop  float64
		retry fednet.RetryPolicy
		chaos bool
	}
	scenarios := []scenario{
		{name: "clean fabric"},
		{name: "20% loss", drop: 0.2},
		{name: "chaos plan", drop: 0.2, chaos: true,
			retry: fednet.RetryPolicy{MaxAttempts: 3, Backoff: 2 * time.Millisecond, RoundBudget: 200 * time.Millisecond}},
	}
	for _, sc := range scenarios {
		cfg := core.DefaultConfig(core.MethodPFDRL)
		cfg.Homes = 4
		cfg.Days = 4
		cfg.DevicesPerHome = 2
		cfg.Seed = 9
		cfg.DropProb = sc.drop
		cfg.Retry = sc.retry
		if sc.chaos {
			// Partition, 8× straggler, 8% payload corruption, and a crash
			// window — all scripted and deterministic.
			cfg.FaultPlan = core.ChaosFaultPlan(cfg.Homes, cfg.Days)
		}
		sys, err := core.NewSystem(cfg)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sys.Run()
		if err != nil {
			log.Fatal(err)
		}
		last := len(res.DailySavedFrac) - 1
		fmt.Printf("\n  %s:\n", sc.name)
		fmt.Printf("    saved %.1f%%, forecast acc %.1f%%\n",
			100*res.DailySavedFrac[last], 100*res.ForecastAccuracy)
		fmt.Printf("    resilience: %s\n", res.Resilience)
	}

	fmt.Println("\nPart 2: secure aggregation refuses to average a partial round")
	models := make([]*nn.Sequential, 4)
	for i := range models {
		models[i] = nn.NewMLP(rand.New(rand.NewSource(int64(i))), 8, 16, 3)
	}
	lossy := fednet.New(4, fednet.Config{DropProb: 0.4, Seed: 1})
	if err := fed.SecureDecentralizedRound(lossy, models, "drl", -1, 42); err != nil {
		fmt.Printf("  lossy fabric:    %v\n", err)
	} else {
		fmt.Println("  lossy fabric:    unexpectedly succeeded")
	}
	clean := fednet.New(4, fednet.Config{})
	if err := fed.SecureDecentralizedRound(clean, models, "drl", -1, 42); err != nil {
		log.Fatal(err)
	}
	fmt.Println("  reliable fabric: round completed, every payload masked, mean exact")
}
