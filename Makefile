# Build/verify entry points. `make verify` is the tier-1 gate (build +
# tests); `make race` is the separate race-detector pass that CI runs as
# its own step — the federated fabric trains homes in parallel goroutines,
# so the race build is the test that actually exercises the locking.

GO ?= go

.PHONY: all build test race bench verify clean

all: verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector pass. Kept separate from `test`: the instrumented binary
# runs several times slower, and the chaos/e2e suites are long enough that
# folding the two together would double CI latency for no extra signal.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run '^$$' .

verify: build test

clean:
	$(GO) clean ./...
