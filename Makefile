# Build/verify entry points. `make verify` is the tier-1 gate (build +
# tests); `make race` is the separate race-detector pass that CI runs as
# its own step — the federated fabric trains homes in parallel goroutines,
# so the race build is the test that actually exercises the locking.

GO ?= go

.PHONY: all build test race bench throughput bench-comms bench-topology bench-store telemetry-smoke serve-smoke scenario-smoke lint verify ci clean

all: verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector pass. Kept separate from `test`: the instrumented binary
# runs several times slower, and the chaos/e2e suites are long enough that
# folding the two together would double CI latency for no extra signal.
race:
	$(GO) test -race ./...

# Hot-path benchmark run. -benchmem makes B/op and allocs/op part of the
# output; the `go test -json` stream is captured to BENCH_hotpath.json so
# regressions in the zero-allocation contract (DESIGN.md §8) diff cleanly
# across commits. The first line of the artifact is the benchmeta header
# (schema + toolchain + host + commit), keeping the stream valid JSONL.
bench: throughput
	$(GO) run ./cmd/pfdrl-bench -benchmeta hotpath > BENCH_hotpath.json
	$(GO) test -json -bench=. -benchmem -run '^$$' . >> BENCH_hotpath.json
	@sed -n 's/.*"Output":"\(Benchmark[^"]*\)\\n".*/\1/p' BENCH_hotpath.json
	@echo "wrote BENCH_hotpath.json"

# End-to-end homes × GOMAXPROCS scaling sweep (BENCH_throughput.json).
# Pass BASELINE=<old BENCH_throughput.json> to embed a before/after
# comparison in the artifact. The scaling gate fails the target when any
# ≥8-home GOMAXPROCS=4 cell's parallel efficiency (throughput vs the same
# fleet at P=1) drops below EFF_FLOOR — the recorded floor the adaptive
# scheduling grain must hold. Override with EFF_FLOOR=0 to disable.
EFF_FLOOR ?= 0.90
throughput:
	$(GO) run ./cmd/pfdrl-bench -throughput -out BENCH_throughput.json \
		-efficiency-floor $(EFF_FLOOR) \
		$(if $(BASELINE),-baseline $(BASELINE))

# Fleet-size × codec federation comms sweep (BENCH_comms.json): bytes per
# round, encode/decode ns, aggregation scratch, and round wall time for the
# PFP1 baseline vs the PFW2 dense/delta/top-k tiers (DESIGN.md §10).
bench-comms:
	$(GO) run ./cmd/pfdrl-bench -comms -out BENCH_comms.json

# Fleet-size × federation-topology sweep (BENCH_topology.json): message
# and byte bills per round (measured vs closed-form) for all-to-all vs
# sampled gossip vs cluster aggregation up to thousands of homes, plus
# end-to-end 8-home throughput per topology (DESIGN.md §12). Override the
# cells with TOPO_HOMES=... (the ci run uses a reduced sweep).
bench-topology:
	$(GO) run ./cmd/pfdrl-bench -topology -out BENCH_topology.json \
		$(if $(TOPO_HOMES),-topo-homes $(TOPO_HOMES))

# Compressed trace-store sweep (BENCH_store.json): block-codec bytes/point
# and encode/decode throughput on quantized and full-precision corpora, plus
# the raw-vs-store resident-heap sweep up to STORE_XL homes (DESIGN.md §15).
# Hard gates inside the driver fail the target if the quantized corpus
# exceeds 2 bytes/point, decode drops below 100 MB/s, or the heap reduction
# at 1024 homes falls under 4×. Override cells with STORE_HOMES=... (the
# ci run uses a reduced sweep).
bench-store:
	$(GO) run ./cmd/pfdrl-bench -store -out BENCH_store.json \
		$(if $(STORE_HOMES),-store-homes $(STORE_HOMES)) \
		$(if $(STORE_XL),-store-xl $(STORE_XL))

# Observability gate: boot a small run with the live telemetry server,
# scrape /metrics, /healthz, and /debug/trace, and assert the key series
# from every instrumented plane plus the JSONL journal. Build-tagged out of
# the normal test run because it shells out to `go run`.
telemetry-smoke:
	$(GO) test -tags telemetry_smoke -count=1 -v ./internal/telemetry/smoke

# Service-mode gate: interrupt a batch run to mint a resumable seed
# snapshot (exercising the SIGINT graceful-shutdown path end to end),
# warm-start the daemon from it on :0, hit every /v1 endpoint, retune a
# live knob, wait for a checkpoint rotation, SIGTERM, and resume the
# final checkpoint. Also pins the CLI's cross-flag diagnostics.
# Build-tagged out of the normal test run because it compiles and execs
# the binary.
serve-smoke:
	$(GO) test -tags serve_smoke -count=1 -v ./internal/serve/smoke

# Scenario gate: run every shipped scenario under scenarios/ through the
# real CLI for one simulated day. Catches drift between the scenario
# documents and the engine (a renamed field, a broken validation range)
# that the package tests can't see because they pin specific files.
scenario-smoke:
	@for f in scenarios/*.json; do \
		echo "== $$f"; \
		$(GO) run ./cmd/pfdrl -scenario $$f -homes 4 -days 1 || exit 1; \
	done

lint:
	$(GO) vet ./...

verify: build test lint

# Full CI gate: build + vet + tests, then the race-detector pass over the
# packages with real cross-goroutine traffic (scheduler pool, home-parallel
# simulation, overlapped federation rounds, sharded matmul and the
# fleet-batched nn/forecast kernels dispatched over it, the wire codec's
# shared reference store, the fednet fabrics the sampled/cluster
# topologies route through, and the telemetry instruments updated from all
# of them). The core and fed suites include the chaos FaultPlan twins
# (compressed vs dense under drops/corruption/partitions), so the race
# build exercises the compressed planes under fault injection. The serve
# daemon and the counting RNG it snapshots join the race list because the
# daemon's HTTP handlers race its background stepping loop by design. The
# store and pecan packages join it because every parallel plane (fleet
# batching, group prediction, cloud training) now decodes compressed
# blocks into per-trace scratch concurrently. A reduced topology sweep
# then regenerates BENCH_topology.json so message-count regressions
# against the closed forms fail the gate, a reduced store sweep
# regenerates BENCH_store.json so codec or memory regressions fail it
# too, and the serve smoke drives the full daemon lifecycle through the
# real binary. The energy and scenario packages join the race list
# because DER dispatch state is read by the parallel stats/telemetry
# planes, and the scenario smoke runs every shipped workload end to end.
ci: verify
	$(GO) vet ./...
	$(GO) test -race ./internal/core ./internal/energy ./internal/fed ./internal/fednet ./internal/forecast ./internal/nn ./internal/pecan ./internal/rng ./internal/sched ./internal/scenario ./internal/serve ./internal/store ./internal/tensor ./internal/wire ./internal/telemetry
	$(MAKE) bench-topology TOPO_HOMES=64,256
	$(MAKE) bench-store STORE_HOMES=64,256 STORE_XL=0
	$(MAKE) serve-smoke
	$(MAKE) scenario-smoke

clean:
	$(GO) clean ./...
